// Flight-recorder acceptance test (ISSUE 6): a partitioned, healed range
// query must be reconstructible end to end from the event log ALONE — plan,
// per-level probe rounds, per-message transmission attempts with drop
// causes, the heal-window re-issue, and the final per-level lattice outcome
// — with no causal-chain gaps. And the log must be bit-identical at 1 and 8
// pool threads (events are recorded only from the orchestrating thread).
//
// The scenario mirrors query_partition_test: peer 0 is cut off during
// [1s, 2s), the query runs mid-partition at t=1200 with a 400 ms heal
// window and a re-issue budget of 2, so the second round crosses the
// partition's end and every deferred level heals.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/network.h"
#include "obs/event_log.h"
#include "obs/timeline.h"

namespace hyperm::core {
namespace {

constexpr int kNumPeers = 16;
constexpr int kNumItems = 400;
constexpr double kSplitStartMs = 1000.0;
constexpr double kSplitEndMs = 2000.0;
constexpr double kQueryTimeMs = kSplitStartMs + 200.0;
constexpr double kEpsilon = 0.8;

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Bed MakeBed(const HyperMOptions& options) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = kNumItems;
  data_options.dim = 32;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = kNumPeers;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

HyperMOptions HealingOptions(int num_threads = 0) {
  HyperMOptions options;
  options.num_layers = 3;
  options.clusters_per_peer = 6;
  options.num_threads = num_threads;
  options.net.unreliable = true;
  net::Partition split;
  split.start_ms = kSplitStartMs;
  split.end_ms = kSplitEndMs;
  split.group = {0};
  options.net.faults.partitions.push_back(split);
  options.plan.reissue_budget = 2;
  options.plan.heal_window_ms = 400.0;
  return options;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::EventLog::Global().Reset(); }
  void TearDown() override { obs::EventLog::Global().Reset(); }
};

// Builds the bed un-armed (keeping publication traffic out of the log), arms
// the recorder, then runs the canonical partitioned-and-healed query.
std::vector<ItemId> RunHealedQuery(const HyperMOptions& options,
                                   RangeQueryInfo* info) {
  Bed bed = MakeBed(options);
  obs::EventLog::Global().Arm();
  bed.network->AdvanceTo(kQueryTimeMs);
  const Vector& center = bed.dataset.items[3];
  Result<std::vector<ItemId>> retrieved = bed.network->RangeQuery(
      center, kEpsilon, /*querying_peer=*/0, /*max_peers_contacted=*/-1, info);
  EXPECT_TRUE(retrieved.ok()) << retrieved.status().ToString();
  EXPECT_GE(bed.network->now(), kSplitEndMs);  // the heal waits really ran
  return retrieved.value();
}

TEST_F(FlightRecorderTest, PartitionedQueryReconstructsEndToEnd) {
  RangeQueryInfo info;
  const std::vector<ItemId> retrieved = RunHealedQuery(HealingOptions(), &info);
  ASSERT_GT(info.reissues, 0);  // the scenario exercised the heal path
  ASSERT_EQ(info.layers_lost, 0);
  ASSERT_FALSE(retrieved.empty());

  const obs::EventLog& log = obs::EventLog::Global();
  EXPECT_EQ(log.dropped(), 0u);
  const std::vector<obs::Event>& events = log.events();

  const std::vector<int64_t> ids = obs::QueryIdsInLog(events);
  ASSERT_EQ(ids.size(), 1u);
  Result<obs::QueryTimeline> reconstructed =
      obs::ReconstructQueryTimeline(events, ids[0]);
  ASSERT_TRUE(reconstructed.ok()) << reconstructed.status().ToString();
  const obs::QueryTimeline& timeline = reconstructed.value();

  // No gaps anywhere in the causal chain — the acceptance criterion.
  const Status chain = obs::ValidateCausalChain(timeline);
  EXPECT_TRUE(chain.ok()) << chain.ToString();

  // Plan: emitted at query time, by the querying peer, covering every layer.
  EXPECT_EQ(timeline.querying_peer, 0);
  EXPECT_DOUBLE_EQ(timeline.plan_ms, kQueryTimeMs);
  EXPECT_EQ(timeline.levels_planned, 3);
  ASSERT_EQ(timeline.levels.size(), 3u);

  // Done: after the partition closed, reporting the returned result count.
  EXPECT_GE(timeline.done_ms, kSplitEndMs);
  EXPECT_EQ(timeline.results, static_cast<int64_t>(retrieved.size()));

  // Heal: the executor parked at least once for the configured window, and
  // the re-issued rounds it merged match the query's own accounting.
  ASSERT_FALSE(timeline.heal_waits.empty());
  EXPECT_DOUBLE_EQ(timeline.heal_waits[0].value, 400.0);
  int64_t reissues = 0;
  bool saw_reissued_round = false;
  bool saw_partition_drop = false;
  bool saw_healed_level = false;
  for (const obs::LevelTrace& level : timeline.levels) {
    EXPECT_TRUE(level.has_final);
    reissues += level.reissues;
    for (const obs::ProbeRound& round : level.rounds) {
      EXPECT_TRUE(round.closed);
      if (round.attempt > 0) saw_reissued_round = true;
      for (const obs::MessageTrace& message : round.messages) {
        for (const obs::Event& attempt : message.attempts) {
          if ((attempt.kind == obs::EventKind::kMsgDrop ||
               attempt.kind == obs::EventKind::kMsgDeadLetter) &&
              attempt.cause == 3) {
            saw_partition_drop = true;  // cause mirrors kLostPartition
          }
        }
      }
    }
    // A level that needed re-issues must end delivered (fate 0) or detoured
    // (fate 1): the second round crossed the partition's end.
    if (level.reissues > 0) {
      saw_healed_level = true;
      EXPECT_LE(level.final_fate, 1) << obs::LevelFateName(level.final_fate);
      EXPECT_GE(level.rounds.size(), 2u);
    }
  }
  EXPECT_EQ(reissues, static_cast<int64_t>(info.reissues));
  EXPECT_TRUE(saw_reissued_round);
  EXPECT_TRUE(saw_partition_drop)
      << "no per-attempt partition drop cause in the reconstructed trace";
  EXPECT_TRUE(saw_healed_level);

  // Retrieve traffic ran after the heal, under the query id but outside any
  // level probe, and reached its peers (the partition was over).
  ASSERT_FALSE(timeline.retrievals.empty());
  for (const obs::MessageTrace& message : timeline.retrievals) {
    EXPECT_TRUE(message.delivered);
    EXPECT_EQ(message.final_cause, 0);
  }
}

TEST_F(FlightRecorderTest, DeadLettersCarryCausesWithoutReissueBudget) {
  // Same partition, no heal budget: levels defer for good, and the chain —
  // including the dead letters' partition causes — must still be complete.
  HyperMOptions options = HealingOptions();
  options.plan = QueryPlanOptions{};
  Bed bed = MakeBed(options);
  obs::EventLog::Global().Arm();
  bed.network->AdvanceTo(kQueryTimeMs);
  RangeQueryInfo info;
  Result<std::vector<ItemId>> retrieved = bed.network->RangeQuery(
      bed.dataset.items[3], kEpsilon, /*querying_peer=*/0, -1, &info);
  ASSERT_TRUE(retrieved.ok());
  ASSERT_GT(info.layers_deferred, 0);
  EXPECT_EQ(info.reissues, 0);

  const std::vector<obs::Event>& events = obs::EventLog::Global().events();
  const std::vector<int64_t> ids = obs::QueryIdsInLog(events);
  ASSERT_EQ(ids.size(), 1u);
  Result<obs::QueryTimeline> timeline =
      obs::ReconstructQueryTimeline(events, ids[0]);
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  const Status chain = obs::ValidateCausalChain(timeline.value());
  EXPECT_TRUE(chain.ok()) << chain.ToString();

  EXPECT_TRUE(timeline.value().heal_waits.empty());
  bool saw_dead_letter = false;
  for (const obs::LevelTrace& level : timeline.value().levels) {
    EXPECT_EQ(level.rounds.size(), 1u);  // no re-issues without a budget
    for (const obs::MessageTrace& message : level.rounds[0].messages) {
      if (!message.delivered) {
        EXPECT_EQ(message.final_cause, 3);  // partition, never random loss
        saw_dead_letter = true;
      }
    }
  }
  EXPECT_TRUE(saw_dead_letter);
}

TEST_F(FlightRecorderTest, LogIsBitIdenticalAcrossThreadCounts) {
  RangeQueryInfo info_1;
  const std::vector<ItemId> retrieved_1 =
      RunHealedQuery(HealingOptions(/*num_threads=*/1), &info_1);
  const obs::EventLog& log = obs::EventLog::Global();
  const std::string jsonl_1 = obs::EventsToJsonl(log.events(), log.dropped());

  obs::EventLog::Global().Reset();

  RangeQueryInfo info_8;
  const std::vector<ItemId> retrieved_8 =
      RunHealedQuery(HealingOptions(/*num_threads=*/8), &info_8);
  const std::string jsonl_8 = obs::EventsToJsonl(log.events(), log.dropped());

  EXPECT_EQ(retrieved_1, retrieved_8);
  ASSERT_GT(jsonl_1.size(), 100u);  // a real log, not two empty trailers
  EXPECT_EQ(jsonl_1, jsonl_8);
}

}  // namespace
}  // namespace hyperm::core
