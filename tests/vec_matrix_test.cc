// The SoA batch kernel's bit-identity contract: SquaredDistanceBatch must
// produce, for every row, the exact double vec::SquaredDistance produces —
// blocking is across rows only, never within a row's accumulation chain.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/matrix.h"

namespace hyperm::vec {
namespace {

std::vector<Vector> RandomRows(size_t rows, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> out(rows);
  for (Vector& row : out) {
    row.resize(dim);
    for (double& x : row) x = rng.Uniform(-10.0, 10.0);
  }
  return out;
}

TEST(MatrixBatchTest, FromRowsRoundTrips) {
  const std::vector<Vector> rows = RandomRows(7, 5, 1);
  const Matrix m = Matrix::FromRows(rows);
  EXPECT_EQ(m.rows(), 7u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.stride(), 5u);
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(m.RowVector(r), rows[r]);
  }
}

TEST(MatrixBatchTest, AppendRowFixesColumnCount) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  m.AppendRow({1.0, 2.0, 3.0});
  EXPECT_EQ(m.cols(), 3u);
  m.AppendRow({4.0, 5.0, 6.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.row(1)[2], 6.0);
}

TEST(MatrixBatchTest, BatchBitIdenticalToScalarKernel) {
  // Row counts straddle the 4-row blocking boundary; dims cover tiny
  // through the paper's 128 and the scale tier's padding-free strides.
  for (size_t rows : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 33u}) {
    for (size_t dim : {1u, 2u, 31u, 128u}) {
      const std::vector<Vector> data = RandomRows(rows, dim, 100 + rows * 7 + dim);
      const Vector query = RandomRows(1, dim, 999 + dim).front();
      const Matrix m = Matrix::FromRows(data);
      std::vector<double> got(rows, -1.0);
      SquaredDistanceBatch(m, query, got.data());
      for (size_t r = 0; r < rows; ++r) {
        // Exact double equality: the accumulation order per row is the
        // contract, not an approximation of it.
        EXPECT_EQ(got[r], SquaredDistance(data[r], query))
            << "rows=" << rows << " dim=" << dim << " r=" << r;
      }
    }
  }
}

TEST(MatrixBatchTest, RawPointerOverloadMatchesMatrixOverload) {
  const std::vector<Vector> data = RandomRows(10, 16, 42);
  const Vector query = RandomRows(1, 16, 43).front();
  const Matrix m = Matrix::FromRows(data);
  std::vector<double> a(10), b(10);
  SquaredDistanceBatch(m, query, a.data());
  SquaredDistanceBatch(m.data(), m.rows(), m.stride(), query.data(),
                       query.size(), b.data());
  EXPECT_EQ(a, b);
}

TEST(MatrixBatchTest, QueryAsRowAndRowAsQueryAgree) {
  // diff vs -diff square to the same double, so swapping the operand roles
  // (how the k-means port calls it) cannot change any bit.
  const std::vector<Vector> data = RandomRows(6, 12, 77);
  const Vector query = RandomRows(1, 12, 78).front();
  const Matrix m = Matrix::FromRows(data);
  std::vector<double> got(6);
  SquaredDistanceBatch(m, query, got.data());
  const Matrix q = Matrix::FromRows({query});
  for (size_t r = 0; r < 6; ++r) {
    double one = 0.0;
    SquaredDistanceBatch(q, data[r], &one);
    EXPECT_EQ(got[r], one);
  }
}

}  // namespace
}  // namespace hyperm::vec
