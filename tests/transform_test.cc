#include "wavelet/transform.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/vector.h"

namespace hyperm::wavelet {
namespace {

Vector RandomVector(size_t dim, Rng& rng) {
  Vector x(dim);
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  return x;
}

TEST(TransformTest, KindNames) {
  EXPECT_EQ(WaveletKindName(WaveletKind::kHaarAveraging), "haar-averaging");
  EXPECT_EQ(WaveletKindName(WaveletKind::kHaarOrthonormal), "haar-orthonormal");
  EXPECT_EQ(WaveletKindName(WaveletKind::kDaubechies4), "daubechies-4");
}

TEST(TransformTest, AveragingMatchesHaarModule) {
  Rng rng(1);
  const Vector x = RandomVector(32, rng);
  Result<Pyramid> a = DecomposeWith(WaveletKind::kHaarAveraging, x);
  Result<Pyramid> b = Decompose(x);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->approximation, b->approximation);
  for (size_t l = 0; l < a->details.size(); ++l) {
    EXPECT_EQ(a->details[l], b->details[l]);
  }
}

TEST(TransformTest, OrthonormalHaarPreservesEnergy) {
  Rng rng(2);
  const Vector x = RandomVector(64, rng);
  Result<Pyramid> p = DecomposeWith(WaveletKind::kHaarOrthonormal, x);
  ASSERT_TRUE(p.ok());
  double energy = vec::SquaredNorm(p->approximation);
  for (const Vector& d : p->details) energy += vec::SquaredNorm(d);
  EXPECT_NEAR(energy, vec::SquaredNorm(x), 1e-8);
}

TEST(TransformTest, Daubechies4PreservesEnergy) {
  Rng rng(3);
  const Vector x = RandomVector(64, rng);
  Result<Pyramid> p = DecomposeWith(WaveletKind::kDaubechies4, x);
  ASSERT_TRUE(p.ok());
  double energy = vec::SquaredNorm(p->approximation);
  for (const Vector& d : p->details) energy += vec::SquaredNorm(d);
  EXPECT_NEAR(energy, vec::SquaredNorm(x), 1e-8);
}

TEST(TransformTest, Daubechies4KillsLinearSignals) {
  // D4 has two vanishing moments: the detail of a linear ramp is ~0 away
  // from the periodic wrap-around.
  Vector ramp(16);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  HaarStep step = DecomposeStepWith(WaveletKind::kDaubechies4, ramp);
  for (size_t k = 0; k + 1 < step.detail.size(); ++k) {  // last tap wraps
    EXPECT_NEAR(step.detail[k], 0.0, 1e-10) << "k=" << k;
  }
}

// Property: perfect reconstruction for every family, dimension and seed.
class TransformRoundTrip
    : public ::testing::TestWithParam<std::tuple<WaveletKind, int, int>> {};

TEST_P(TransformRoundTrip, PerfectReconstruction) {
  const auto [kind, dim, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const Vector x = RandomVector(static_cast<size_t>(dim), rng);
  Result<Pyramid> p = DecomposeWith(kind, x);
  ASSERT_TRUE(p.ok());
  const Vector back = ReconstructWith(kind, *p);
  ASSERT_EQ(back.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TransformRoundTrip,
    ::testing::Combine(::testing::Values(WaveletKind::kHaarAveraging,
                                         WaveletKind::kHaarOrthonormal,
                                         WaveletKind::kDaubechies4),
                       ::testing::Values(2, 4, 16, 128, 512),
                       ::testing::Values(5, 6)));

// Property: the advertised radius scale is sound — points inside a sphere
// stay inside the scaled sphere in every subspace, for every family.
class TransformContraction : public ::testing::TestWithParam<WaveletKind> {};

TEST_P(TransformContraction, RadiusScaleIsSound) {
  const WaveletKind kind = GetParam();
  Rng rng(77);
  const int dim = 32;
  const int m = 5;
  const double r = 1.5;
  Vector center = RandomVector(dim, rng);
  Result<Pyramid> center_pyramid = DecomposeWith(kind, center);
  ASSERT_TRUE(center_pyramid.ok());
  const std::vector<Level> levels = DefaultLevels(m, m + 1);
  for (int trial = 0; trial < 300; ++trial) {
    Vector offset(dim);
    for (double& v : offset) v = rng.Gaussian();
    const double norm = vec::Norm(offset);
    const double radius = r * std::pow(rng.NextDouble(), 1.0 / dim);
    Vector point = center;
    for (int i = 0; i < dim; ++i) {
      point[static_cast<size_t>(i)] += offset[static_cast<size_t>(i)] / norm * radius;
    }
    Result<Pyramid> point_pyramid = DecomposeWith(kind, point);
    ASSERT_TRUE(point_pyramid.ok());
    for (const Level& level : levels) {
      const double bound = r * RadiusScaleFor(kind, m, level);
      const double dist = vec::Distance(Project(*point_pyramid, level),
                                        Project(*center_pyramid, level));
      EXPECT_LE(dist, bound + 1e-9)
          << WaveletKindName(kind) << " level " << level.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, TransformContraction,
                         ::testing::Values(WaveletKind::kHaarAveraging,
                                           WaveletKind::kHaarOrthonormal,
                                           WaveletKind::kDaubechies4));

}  // namespace
}  // namespace hyperm::wavelet
