// Unit tests of the flight recorder core (obs/event_log.h): bounded buffer
// with counted-not-stored overflow, ambient causal-context fill, owner-thread
// gating, time-series rings, JSONL export stability, Reset semantics.
//
// Tests drive EventLog::Global() through the macros (the exact production
// path) and Reset() it around each test — the log is process-global state.

#include "obs/event_log.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace hyperm::obs {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override { EventLog::Global().Reset(); }
  void TearDown() override { EventLog::Global().Reset(); }
};

TEST_F(EventLogTest, UnarmedRecordsNothingAndSkipsArgumentEvaluation) {
  EventLog& log = EventLog::Global();
  EXPECT_FALSE(log.enabled());
  int evaluations = 0;
  [[maybe_unused]] auto touch = [&evaluations] {
    ++evaluations;
    return 3;
  };
  HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kMsgSend, .src = touch());
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(log.events().empty());
}

TEST_F(EventLogTest, RecordsInOrderWithKindPayloads) {
  EventLog& log = EventLog::Global();
  log.Arm();
  HM_OBS_EVENT(.sim_ms = 10.0, .kind = EventKind::kMsgSend, .src = 1, .dst = 2,
               .value = 64.0, .aux = 5);
  HM_OBS_EVENT(.sim_ms = 12.5, .kind = EventKind::kMsgDrop, .attempt = 0,
               .cause = 3);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].kind, EventKind::kMsgSend);
  EXPECT_EQ(log.events()[0].src, 1);
  EXPECT_EQ(log.events()[0].aux, 5);
  EXPECT_EQ(log.events()[1].kind, EventKind::kMsgDrop);
  EXPECT_EQ(log.events()[1].cause, 3);
  EXPECT_DOUBLE_EQ(log.events()[1].sim_ms, 12.5);
}

TEST_F(EventLogTest, OverflowCountsInsteadOfStoring) {
  EventLog& log = EventLog::Global();
  log.Arm(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    HM_OBS_EVENT(.sim_ms = static_cast<double>(i),
                 .kind = EventKind::kMobilityTick, .aux = i);
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  // The retained events are the first four, not an arbitrary window.
  EXPECT_EQ(log.events().back().aux, 3);
}

TEST_F(EventLogTest, ContextScopesFillUnsetIdsAndRestore) {
  EventLog& log = EventLog::Global();
  log.Arm();
  {
    HM_OBS_QUERY_SCOPE(qid);
    EXPECT_EQ(qid, 0);
    HM_OBS_LEVEL_SCOPE(2);
    {
      HM_OBS_MSG_SCOPE(mid);
      EXPECT_EQ(mid, 0);
      HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kMsgSend);
    }
    // Explicit ids always win over the ambient context.
    HM_OBS_EVENT(.sim_ms = 2.0, .kind = EventKind::kProbeOutcome,
                 .query_id = 99, .level = 7);
  }
  HM_OBS_EVENT(.sim_ms = 3.0, .kind = EventKind::kMobilityTick);

  ASSERT_EQ(log.events().size(), 3u);
  const Event& inner = log.events()[0];
  EXPECT_EQ(inner.query_id, 0);
  EXPECT_EQ(inner.level, 2);
  EXPECT_EQ(inner.msg_id, 0);
  const Event& explicit_ids = log.events()[1];
  EXPECT_EQ(explicit_ids.query_id, 99);
  EXPECT_EQ(explicit_ids.level, 7);
  EXPECT_EQ(explicit_ids.msg_id, -1);  // msg scope already closed
  const Event& outside = log.events()[2];
  EXPECT_EQ(outside.query_id, -1);
  EXPECT_EQ(outside.level, -1);
}

TEST_F(EventLogTest, RootScopeShadowsAmbientContext) {
  EventLog& log = EventLog::Global();
  log.Arm();
  HM_OBS_QUERY_SCOPE(qid);
  HM_OBS_LEVEL_SCOPE(1);
  {
    // What a scheduled simulator callback does while a query is on the stack.
    HM_OBS_ROOT_SCOPE();
    HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kRepublishRound, .aux = 3);
  }
  HM_OBS_EVENT(.sim_ms = 2.0, .kind = EventKind::kProbeIssue, .attempt = 0);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].query_id, -1);
  EXPECT_EQ(log.events()[0].level, -1);
  EXPECT_EQ(log.events()[1].query_id, qid);
  EXPECT_EQ(log.events()[1].level, 1);
}

TEST_F(EventLogTest, OffOwnerThreadRecordsNothing) {
  EventLog& log = EventLog::Global();
  log.Arm();
  HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kMsgSend);
  int worker_evaluations = 0;
  std::thread worker([&log, &worker_evaluations] {
    EXPECT_TRUE(log.armed());
    EXPECT_FALSE(log.enabled());  // armed, but not the owner
    [[maybe_unused]] auto touch = [&worker_evaluations] {
      ++worker_evaluations;
      return 1;
    };
    HM_OBS_EVENT(.sim_ms = 2.0, .kind = EventKind::kMsgDrop, .src = touch());
    HM_OBS_SERIES("probe.worker", 2.0, 1.0);
    HM_OBS_QUERY_SCOPE(worker_qid);
    EXPECT_EQ(worker_qid, -1);  // ids are only drawn on the owner thread
  });
  worker.join();
  EXPECT_EQ(worker_evaluations, 0);
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.series().count("probe.worker"), 0u);
}

TEST_F(EventLogTest, TimeSeriesRingOverwritesOldestAndCountsTotal) {
  TimeSeries series(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    series.Sample(static_cast<double>(i), static_cast<double>(i) * 10.0);
  }
  EXPECT_EQ(series.total(), 5u);
  const std::vector<TimeSeries::Point> points = series.Points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].sim_ms, 2.0);  // oldest retained
  EXPECT_DOUBLE_EQ(points[1].sim_ms, 3.0);
  EXPECT_DOUBLE_EQ(points[2].sim_ms, 4.0);
  EXPECT_DOUBLE_EQ(points[2].value, 40.0);
}

TEST_F(EventLogTest, SeriesMacroSamplesNamedSeries) {
  EventLog& log = EventLog::Global();
  log.Arm();
  HM_OBS_SERIES("probe.islands", 100.0, 2.0);
  HM_OBS_SERIES("probe.islands", 200.0, 3.0);
  ASSERT_EQ(log.series().count("probe.islands"), 1u);
  const TimeSeries& series = log.series().at("probe.islands");
  EXPECT_EQ(series.total(), 2u);
  EXPECT_DOUBLE_EQ(series.Points()[1].value, 3.0);
}

TEST_F(EventLogTest, JsonlExportIsByteStableAndCarriesTrailer) {
  EventLog& log = EventLog::Global();
  log.Arm();
  HM_OBS_QUERY_SCOPE(qid);
  (void)qid;
  HM_OBS_EVENT(.sim_ms = 1.5, .kind = EventKind::kQueryPlan, .src = 4, .aux = 2);
  HM_OBS_EVENT(.sim_ms = 2.0, .kind = EventKind::kMsgDrop, .attempt = 1,
               .cause = 3, .value = 12.25);
  const std::string first = EventsToJsonl(log.events(), log.dropped());
  const std::string second = EventsToJsonl(log.events(), log.dropped());
  EXPECT_EQ(first, second);
  // One line per event plus the trailer.
  EXPECT_EQ(std::count(first.begin(), first.end(), '\n'), 3);
  EXPECT_NE(first.find("\"kind\":\"query_plan\""), std::string::npos);
  EXPECT_NE(first.find("\"sub\":\"net\""), std::string::npos);
  EXPECT_NE(first.find("\"cause\":3"), std::string::npos);
  EXPECT_NE(first.find("{\"dropped_events\":0,\"events\":2}"), std::string::npos);
}

TEST_F(EventLogTest, ResetClearsEverythingAndDisarms) {
  EventLog& log = EventLog::Global();
  log.Arm(/*capacity=*/2);
  HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kMsgSend);
  HM_OBS_EVENT(.sim_ms = 2.0, .kind = EventKind::kMsgSend);
  HM_OBS_EVENT(.sim_ms = 3.0, .kind = EventKind::kMsgSend);  // dropped
  HM_OBS_SERIES("probe.x", 1.0, 1.0);
  EXPECT_EQ(log.dropped(), 1u);
  log.Reset();
  EXPECT_FALSE(log.armed());
  EXPECT_TRUE(log.events().empty());
  EXPECT_TRUE(log.series().empty());
  EXPECT_EQ(log.dropped(), 0u);
  // Id counters restart: the first query after a Reset is query 0 again.
  log.Arm();
  HM_OBS_QUERY_SCOPE(qid);
  EXPECT_EQ(qid, 0);
}

TEST_F(EventLogTest, KindNamesAndSubsystemsAreConsistent) {
  EXPECT_STREQ(EventKindName(EventKind::kMsgDeadLetter), "msg_dead_letter");
  EXPECT_EQ(SubsystemOf(EventKind::kMsgDrop), Subsystem::kNet);
  EXPECT_EQ(SubsystemOf(EventKind::kTxAirtime), Subsystem::kChannel);
  EXPECT_EQ(SubsystemOf(EventKind::kMobilityTick), Subsystem::kMobility);
  EXPECT_EQ(SubsystemOf(EventKind::kRepublishRound), Subsystem::kSoftState);
  EXPECT_EQ(SubsystemOf(EventKind::kQueryPlan), Subsystem::kQuery);
  EXPECT_STREQ(SubsystemName(Subsystem::kChannel), "channel");
  EXPECT_STREQ(DeliveryCauseName(3), "partition");
  EXPECT_STREQ(LevelFateName(2), "deferred");
}

}  // namespace
}  // namespace hyperm::obs
