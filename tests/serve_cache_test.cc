// The result cache's coherence contract: a cached answer never outlives the
// summaries it was computed from. Mechanically, ResultCache entries are
// (epoch, TTL)-guarded, and HyperMNetwork::summary_epoch() must bump on
// every answer-relevant state change — post-creation inserts, explicit
// republishes, crash wipes, rejoins, TTL expiry sweeps, and the republish
// tick that repairs wiped state — while staying put across answer-idempotent
// maintenance (plain TTL-refresh ticks) and across queries themselves.

#include "serve/cache.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/network.h"

namespace hyperm::serve {
namespace {

CacheOptions EnabledCache(double ttl_ms) {
  CacheOptions options;
  options.enabled = true;
  options.ttl_ms = ttl_ms;
  return options;
}

TEST(ResultCacheTest, FillThenLookupHits) {
  ResultCache cache(4, EnabledCache(1'000.0));
  cache.Fill(/*peer=*/1, /*signature=*/42, /*epoch=*/7, /*now_ms=*/0.0,
             {10, 11, 12});
  const std::vector<core::ItemId>* hit = cache.Lookup(1, 42, 7, 500.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, (std::vector<core::ItemId>{10, 11, 12}));
  EXPECT_EQ(cache.stats().hits, 1u);
  // Caches are per peer: the same signature on another peer is a miss.
  EXPECT_EQ(cache.Lookup(2, 42, 7, 500.0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, EpochMismatchInvalidates) {
  ResultCache cache(2, EnabledCache(/*ttl_ms=*/0.0));  // TTL disabled
  cache.Fill(0, 42, /*epoch=*/7, 0.0, {1});
  // The network state moved on; the entry must die, not serve stale data.
  EXPECT_EQ(cache.Lookup(0, 42, /*epoch=*/8, 0.0), nullptr);
  EXPECT_EQ(cache.stats().epoch_invalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 0u);  // erased on the spot, not just skipped
}

TEST(ResultCacheTest, TtlExpiresEntries) {
  ResultCache cache(2, EnabledCache(/*ttl_ms=*/100.0));
  cache.Fill(0, 42, 7, /*now_ms=*/0.0, {1});
  ASSERT_NE(cache.Lookup(0, 42, 7, 99.0), nullptr);
  EXPECT_EQ(cache.Lookup(0, 42, 7, 101.0), nullptr);
  EXPECT_EQ(cache.stats().ttl_expirations, 1u);
  // ttl_ms <= 0 disables the clock entirely (epoch-only coherence).
  ResultCache eternal(1, EnabledCache(/*ttl_ms=*/0.0));
  eternal.Fill(0, 1, 7, 0.0, {2});
  EXPECT_NE(eternal.Lookup(0, 1, 7, 1.0e12), nullptr);
}

TEST(ResultCacheTest, DisabledCacheNeverHits) {
  CacheOptions disabled;
  disabled.enabled = false;
  ResultCache cache(2, disabled);
  cache.Fill(0, 42, 7, 0.0, {1});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(0, 42, 7, 0.0), nullptr);
}

// -- summary_epoch(): the network side of the coherence argument -----------

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

Bed MakeBed(const core::HyperMOptions& options) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = 64;
  data_options.dim = 8;
  data_options.num_families = 4;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 8;
  assign_options.num_interest_classes = 4;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<core::HyperMNetwork>> net =
      core::HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

TEST(SummaryEpochTest, QueriesDoNotBumpTheEpoch) {
  core::HyperMOptions options;
  options.net.unreliable = true;
  Bed bed = MakeBed(options);
  const uint64_t before = bed.network->summary_epoch();
  Result<std::vector<core::ItemId>> r =
      bed.network->RangeQuery(bed.dataset.items[0], 0.5, /*querying_peer=*/0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(bed.network->summary_epoch(), before);
}

TEST(SummaryEpochTest, InsertAndRepublishBump) {
  core::HyperMOptions options;
  options.net.unreliable = true;
  Bed bed = MakeBed(options);
  const uint64_t e0 = bed.network->summary_epoch();
  bed.network->AddItemWithoutRepublish(
      0, static_cast<core::ItemId>(bed.dataset.items.size()),
      bed.dataset.items[0]);
  const uint64_t e1 = bed.network->summary_epoch();
  EXPECT_GT(e1, e0);
  Rng rng(7);
  ASSERT_TRUE(bed.network->RepublishPeer(0, rng).ok());
  EXPECT_GT(bed.network->summary_epoch(), e1);
}

TEST(SummaryEpochTest, CrashAndRejoinBothBump) {
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.faults.peer_events.push_back(
      net::PeerEvent{/*at_ms=*/100.0, /*peer=*/1, /*up=*/false});
  options.net.faults.peer_events.push_back(
      net::PeerEvent{/*at_ms=*/200.0, /*peer=*/1, /*up=*/true});
  Bed bed = MakeBed(options);
  const uint64_t e0 = bed.network->summary_epoch();
  bed.network->AdvanceTo(150.0);  // crash wipes peer 1's published summaries
  const uint64_t e1 = bed.network->summary_epoch();
  EXPECT_GT(e1, e0);
  bed.network->AdvanceTo(250.0);  // rejoin: up again, stores still empty
  EXPECT_GT(bed.network->summary_epoch(), e1);
}

TEST(SummaryEpochTest, ExpirySweepBumpsOnlyWhenEntriesExpire) {
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.summary_ttl_ms = 500.0;
  options.net.expiry_sweep_period_ms = 200.0;
  Bed bed = MakeBed(options);
  const uint64_t e0 = bed.network->summary_epoch();
  // First sweeps find everything fresh: answer-idempotent, no bump.
  bed.network->AdvanceTo(450.0);
  EXPECT_EQ(bed.network->summary_epoch(), e0);
  // Past the TTL the sweep removes summaries — that can change answers.
  bed.network->AdvanceTo(1'000.0);
  EXPECT_GT(bed.network->summary_epoch(), e0);
}

TEST(SummaryEpochTest, RepublishTickRepairBumpsViaDirtyFlag) {
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.republish_period_ms = 300.0;
  options.net.faults.peer_events.push_back(
      net::PeerEvent{/*at_ms=*/100.0, /*peer=*/2, /*up=*/false});
  options.net.faults.peer_events.push_back(
      net::PeerEvent{/*at_ms=*/150.0, /*peer=*/2, /*up=*/true});
  Bed bed = MakeBed(options);
  bed.network->AdvanceTo(200.0);  // crash + rejoin: summaries wiped, dirty
  const uint64_t after_fault = bed.network->summary_epoch();
  // The next tick (t=300) re-publishes the wiped peer: one repair bump.
  bed.network->AdvanceTo(350.0);
  const uint64_t after_repair = bed.network->summary_epoch();
  EXPECT_GT(after_repair, after_fault);
  // Later ticks merely refresh TTLs on an already-consistent state: no bump.
  bed.network->AdvanceTo(1'200.0);
  EXPECT_EQ(bed.network->summary_epoch(), after_repair);
}

}  // namespace
}  // namespace hyperm::serve
