#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hyperm {
namespace {

TEST(MathUtilTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathUtilTest, LogDoubleFactorial) {
  EXPECT_NEAR(LogDoubleFactorial(-1), 0.0, 1e-12);
  EXPECT_NEAR(LogDoubleFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogDoubleFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogDoubleFactorial(5), std::log(15.0), 1e-10);   // 5*3*1
  EXPECT_NEAR(LogDoubleFactorial(6), std::log(48.0), 1e-10);   // 6*4*2
  EXPECT_NEAR(LogDoubleFactorial(8), std::log(384.0), 1e-10);  // 8*6*4*2
}

TEST(MathUtilTest, IncompleteBetaBoundaries) {
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(MathUtilTest, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(MathUtilTest, IncompleteBetaClosedFormA1) {
  // I_x(1,b) = 1 - (1-x)^b.
  for (double b : {0.5, 2.0, 7.5}) {
    for (double x : {0.05, 0.3, 0.8}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(1.0, b, x), 1.0 - std::pow(1.0 - x, b), 1e-10);
    }
  }
}

TEST(MathUtilTest, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double a : {0.7, 2.0, 5.5}) {
    for (double b : {0.5, 3.0}) {
      for (double x : {0.2, 0.5, 0.85}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
                    1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-10);
      }
    }
  }
}

TEST(MathUtilTest, IncompleteBetaMonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double v = RegularizedIncompleteBeta(3.5, 1.5, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(MathUtilTest, IncompleteBetaHalfIntegerKnownValue) {
  // I_{1/2}(1/2, 1/2) = 1/2 (arcsine distribution median).
  EXPECT_NEAR(RegularizedIncompleteBeta(0.5, 0.5, 0.5), 0.5, 1e-10);
}

TEST(MathUtilTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp(100.0, 100.0), 100.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp(0.0, -1000.0), 0.0, 1e-12);
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1 + 1e-10)));
}

TEST(MathUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(512), 512);
  EXPECT_EQ(NextPowerOfTwo(513), 1024);
}

TEST(MathUtilTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(-4));
}

TEST(MathUtilTest, Log2Exact) {
  EXPECT_EQ(Log2Exact(1), 0);
  EXPECT_EQ(Log2Exact(2), 1);
  EXPECT_EQ(Log2Exact(512), 9);
}

}  // namespace
}  // namespace hyperm
