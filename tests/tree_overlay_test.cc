#include "overlay/tree_overlay.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::overlay {
namespace {

std::unique_ptr<TreeOverlay> MakeTree(size_t dim, int nodes, sim::NetworkStats* stats,
                                      uint64_t seed = 21) {
  Rng rng(seed);
  auto result = TreeOverlay::Build(dim, nodes, stats, rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(TreeBuildTest, RejectsBadArguments) {
  sim::NetworkStats stats;
  Rng rng(1);
  EXPECT_FALSE(TreeOverlay::Build(0, 4, &stats, rng).ok());
  EXPECT_FALSE(TreeOverlay::Build(2, 0, &stats, rng).ok());
}

class TreePartition : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreePartition, RegionsTileTheCube) {
  const auto [dim, nodes] = GetParam();
  sim::NetworkStats stats;
  auto tree = MakeTree(static_cast<size_t>(dim), nodes, &stats);
  EXPECT_EQ(tree->num_nodes(), nodes);
  double volume = 0.0;
  for (NodeId n = 0; n < tree->num_nodes(); ++n) volume += tree->region(n).Volume();
  EXPECT_NEAR(volume, 1.0, 1e-9);

  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    Vector key(static_cast<size_t>(dim));
    for (double& x : key) x = rng.NextDouble();
    const NodeId owner = tree->OwnerOf(key);
    ASSERT_NE(owner, kInvalidNode);
    EXPECT_TRUE(tree->region(owner).ContainsHalfOpen(key));
  }
}

TEST_P(TreePartition, BalancedDepth) {
  const auto [dim, nodes] = GetParam();
  sim::NetworkStats stats;
  auto tree = MakeTree(static_cast<size_t>(dim), nodes, &stats);
  // Splitting the shallowest leaf keeps depths within one of ceil(log2 N).
  const int expected = static_cast<int>(std::ceil(std::log2(std::max(2, nodes))));
  for (NodeId n = 0; n < tree->num_nodes(); ++n) {
    EXPECT_LE(tree->depth(n), expected + 1);
    if (nodes > 1) EXPECT_GE(tree->depth(n), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, TreePartition,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 5, 32, 50)));

TEST(TreeInsertTest, SphereReplicatedToOverlappingRegions) {
  sim::NetworkStats stats;
  auto tree = MakeTree(2, 32, &stats);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5, 0.5}, 0.25};
  c.owner_peer = 1;
  c.items = 10;
  c.cluster_id = 7;
  Result<InsertReceipt> receipt = tree->Insert(c, 0);
  ASSERT_TRUE(receipt.ok());
  int holders = 0;
  for (NodeId n = 0; n < tree->num_nodes(); ++n) {
    const bool overlaps = tree->region(n).IntersectsSphere(c.sphere);
    bool holds = false;
    for (const NodeStorage& s : tree->StorageDistribution()) {
      if (s.node == n && s.clusters > 0) holds = true;
    }
    EXPECT_EQ(overlaps, holds) << "node " << n;
    if (holds) ++holders;
  }
  EXPECT_EQ(receipt->replicas, holders - 1);
}

TEST(TreeQueryTest, FindsEveryIntersectingClusterExactlyOnce) {
  sim::NetworkStats stats;
  auto tree = MakeTree(2, 24, &stats);
  Rng rng(5);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 40; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.15)};
    c.owner_peer = static_cast<int>(id % 10);
    c.items = 1;
    c.cluster_id = id;
    ASSERT_TRUE(tree->Insert(c, 0).ok());
    all.push_back(c);
  }
  for (int trial = 0; trial < 50; ++trial) {
    geom::Sphere query{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.0, 0.3)};
    Result<RangeQueryResult> result = tree->RangeQuery(query, 0);
    ASSERT_TRUE(result.ok());
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) {
      EXPECT_TRUE(found.insert(c.cluster_id).second);
    }
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u)
          << "cluster " << c.cluster_id << " trial " << trial;
    }
  }
}

TEST(TreeRoutingTest, LogarithmicRoutingCost) {
  sim::NetworkStats stats;
  auto tree = MakeTree(2, 128, &stats);
  stats.Reset();
  Rng rng(6);
  int total_hops = 0;
  const int inserts = 100;
  for (int i = 0; i < inserts; ++i) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()}, 0.0};
    c.items = 1;
    c.cluster_id = static_cast<uint64_t>(i + 1);
    Result<InsertReceipt> receipt =
        tree->Insert(c, static_cast<NodeId>(rng.NextIndex(128)));
    ASSERT_TRUE(receipt.ok());
    total_hops += receipt->routing_hops;
  }
  // Two leaves of a balanced 128-leaf tree are at most 2*7 edges apart.
  EXPECT_LE(static_cast<double>(total_hops) / inserts, 14.0);
  EXPECT_GT(total_hops, 0);
}

TEST(TreeQueryTest, QueryCenterOutsideCubeIsClamped) {
  sim::NetworkStats stats;
  auto tree = MakeTree(2, 8, &stats);
  EXPECT_TRUE(tree->RangeQuery(geom::Sphere{{2.0, -1.0}, 0.2}, 0).ok());
}

TEST(TreeStorageTest, ReplicationToggleAndClear) {
  sim::NetworkStats stats;
  auto tree = MakeTree(2, 16, &stats);
  tree->set_replicate_spheres(false);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5, 0.5}, 0.3};
  c.items = 4;
  c.cluster_id = 1;
  Result<InsertReceipt> receipt = tree->Insert(c, 0);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->replicas, 0);
  tree->ClearStorage();
  for (const NodeStorage& s : tree->StorageDistribution()) EXPECT_EQ(s.clusters, 0);
}

}  // namespace
}  // namespace hyperm::overlay
