#include "wavelet/haar.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/vector.h"

namespace hyperm::wavelet {
namespace {

Vector RandomVector(size_t dim, Rng& rng) {
  Vector x(dim);
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  return x;
}

TEST(HaarStepTest, AveragingConvention) {
  const Vector x{2.0, 4.0, -1.0, 3.0};
  HaarStep step = DecomposeStep(x);
  EXPECT_EQ(step.approximation, (Vector{3.0, 1.0}));
  EXPECT_EQ(step.detail, (Vector{-1.0, -2.0}));
}

TEST(HaarStepTest, StepRoundTrips) {
  Rng rng(1);
  const Vector x = RandomVector(16, rng);
  HaarStep step = DecomposeStep(x);
  const Vector back = ReconstructStep(step.approximation, step.detail);
  ASSERT_EQ(back.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-12);
}

TEST(HaarStepTest, EnergyRelation) {
  // Averaging Haar: ||A||^2 + ||D||^2 = ||x||^2 / 2 per step.
  Rng rng(2);
  const Vector x = RandomVector(32, rng);
  HaarStep step = DecomposeStep(x);
  EXPECT_NEAR(vec::SquaredNorm(step.approximation) + vec::SquaredNorm(step.detail),
              vec::SquaredNorm(x) / 2.0, 1e-9);
}

TEST(HaarDecomposeTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(Decompose(Vector(6, 1.0)).ok());
  EXPECT_FALSE(Decompose(Vector{}).ok());
}

TEST(HaarDecomposeTest, PyramidShape) {
  Result<Pyramid> p = Decompose(Vector(16, 1.0));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->approximation.size(), 1u);
  EXPECT_EQ(p->num_detail_levels(), 4);
  EXPECT_EQ(p->original_dim(), 16u);
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(p->details[static_cast<size_t>(l)].size(), size_t{1} << l);
  }
}

TEST(HaarDecomposeTest, ConstantVectorHasZeroDetails) {
  Result<Pyramid> p = Decompose(Vector(8, 3.5));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->approximation[0], 3.5, 1e-12);
  for (const Vector& d : p->details) {
    for (double v : d) EXPECT_NEAR(v, 0.0, 1e-12);
  }
}

TEST(HaarDecomposeTest, ApproximationIsGlobalMean) {
  Rng rng(3);
  const Vector x = RandomVector(64, rng);
  Result<Pyramid> p = Decompose(x);
  ASSERT_TRUE(p.ok());
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  EXPECT_NEAR(p->approximation[0], mean, 1e-10);
}

TEST(HaarDecomposeTest, DimensionOneIsIdentity) {
  Result<Pyramid> p = Decompose(Vector{7.0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_detail_levels(), 0);
  EXPECT_EQ(p->approximation, (Vector{7.0}));
  EXPECT_EQ(Reconstruct(*p), (Vector{7.0}));
}

TEST(HaarDecomposeTest, Linearity) {
  Rng rng(4);
  const Vector x = RandomVector(32, rng);
  const Vector y = RandomVector(32, rng);
  const Vector z = vec::Add(vec::Scale(x, 2.0), y);
  Result<Pyramid> px = Decompose(x);
  Result<Pyramid> py = Decompose(y);
  Result<Pyramid> pz = Decompose(z);
  ASSERT_TRUE(px.ok() && py.ok() && pz.ok());
  EXPECT_NEAR(pz->approximation[0], 2.0 * px->approximation[0] + py->approximation[0],
              1e-10);
  for (size_t l = 0; l < pz->details.size(); ++l) {
    for (size_t i = 0; i < pz->details[l].size(); ++i) {
      EXPECT_NEAR(pz->details[l][i], 2.0 * px->details[l][i] + py->details[l][i], 1e-10);
    }
  }
}

TEST(HaarDecomposeTest, PadToPowerOfTwo) {
  const Vector x{1.0, 2.0, 3.0};
  const Vector padded = PadToPowerOfTwo(x);
  EXPECT_EQ(padded, (Vector{1.0, 2.0, 3.0, 0.0}));
  // Already a power of two: unchanged.
  EXPECT_EQ(PadToPowerOfTwo(padded), padded);
}

// Property sweep: perfect reconstruction over many dims and seeds.
class HaarRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HaarRoundTrip, PerfectReconstruction) {
  const auto [dim, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const Vector x = RandomVector(static_cast<size_t>(dim), rng);
  Result<Pyramid> p = Decompose(x);
  ASSERT_TRUE(p.ok());
  const Vector back = Reconstruct(*p);
  ASSERT_EQ(back.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, HaarRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 64, 512),
                       ::testing::Values(10, 20, 30)));

}  // namespace
}  // namespace hyperm::wavelet
