#include "hyperm/score.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hyperm::core {
namespace {

overlay::PublishedCluster MakeCluster(Vector center, double radius, int peer,
                                      int items, uint64_t id = 1) {
  overlay::PublishedCluster c;
  c.sphere = geom::Sphere{std::move(center), radius};
  c.owner_peer = peer;
  c.items = items;
  c.cluster_id = id;
  return c;
}

TEST(CoverageFractionTest, FullContainmentIsOne) {
  const auto c = MakeCluster({0.5, 0.5}, 0.1, 0, 10);
  const geom::Sphere query{{0.5, 0.5}, 1.0};
  EXPECT_EQ(ClusterCoverageFraction(2, c, query), 1.0);
}

TEST(CoverageFractionTest, DisjointIsZero) {
  const auto c = MakeCluster({0.0, 0.0}, 0.1, 0, 10);
  const geom::Sphere query{{1.0, 0.0}, 0.2};
  EXPECT_EQ(ClusterCoverageFraction(2, c, query), 0.0);
}

TEST(CoverageFractionTest, PointClusterStepFunction) {
  const auto c = MakeCluster({0.3}, 0.0, 0, 5);
  EXPECT_EQ(ClusterCoverageFraction(1, c, geom::Sphere{{0.35}, 0.1}), 1.0);
  EXPECT_EQ(ClusterCoverageFraction(1, c, geom::Sphere{{0.5}, 0.1}), 0.0);
}

TEST(CoverageFractionTest, PointQueryDegradesToContainment) {
  // A zero-radius query has zero intersection volume, but clusters that
  // contain the point must stay candidates (point-query support).
  const auto c = MakeCluster({0.0, 0.0}, 0.5, 0, 10);
  EXPECT_EQ(ClusterCoverageFraction(2, c, geom::Sphere{{0.3, 0.0}, 0.0}), 1.0);
  EXPECT_EQ(ClusterCoverageFraction(2, c, geom::Sphere{{0.6, 0.0}, 0.0}), 0.0);
  // Boundary point counts as covered.
  EXPECT_EQ(ClusterCoverageFraction(2, c, geom::Sphere{{0.5, 0.0}, 0.0}), 1.0);
}

TEST(LevelScoresTest, SumsFractionTimesItems) {
  std::vector<overlay::PublishedCluster> matches{
      MakeCluster({0.0}, 0.0, 7, 20, 1),   // fully inside -> +20
      MakeCluster({0.05}, 0.0, 7, 10, 2),  // fully inside -> +10
      MakeCluster({5.0}, 0.0, 8, 99, 3),   // outside -> no entry
  };
  const geom::Sphere query{{0.0}, 0.1};
  auto scores = ComputeLevelScores(1, matches, query);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[7], 30.0, 1e-12);
}

TEST(LevelScoresTest, PartialOverlapScoresFraction) {
  // 1-D cluster [0,2] (center 1, r 1), query [1.5, 2.5]: overlap [1.5,2] is a
  // quarter of the cluster's extent.
  std::vector<overlay::PublishedCluster> matches{MakeCluster({1.0}, 1.0, 4, 100)};
  const geom::Sphere query{{2.0}, 0.5};
  auto scores = ComputeLevelScores(1, matches, query);
  EXPECT_NEAR(scores[4], 25.0, 1e-9);
}

TEST(AggregateTest, MinTakesWorstLevel) {
  std::vector<std::unordered_map<int, double>> levels{
      {{1, 10.0}, {2, 5.0}},
      {{1, 4.0}, {2, 8.0}},
  };
  const auto scores = AggregateScores(levels, ScorePolicy::kMin);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].peer, 2);
  EXPECT_DOUBLE_EQ(scores[0].score, 5.0);
  EXPECT_EQ(scores[1].peer, 1);
  EXPECT_DOUBLE_EQ(scores[1].score, 4.0);
}

TEST(AggregateTest, MinPrunesPeersMissingFromAnyLevel) {
  std::vector<std::unordered_map<int, double>> levels{
      {{1, 10.0}, {2, 5.0}},
      {{1, 4.0}},  // peer 2 absent here
  };
  const auto scores = AggregateScores(levels, ScorePolicy::kMin);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].peer, 1);
}

TEST(AggregateTest, SumKeepsPartialPeers) {
  std::vector<std::unordered_map<int, double>> levels{
      {{1, 10.0}, {2, 5.0}},
      {{1, 4.0}},
  };
  const auto scores = AggregateScores(levels, ScorePolicy::kSum);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].peer, 1);
  EXPECT_DOUBLE_EQ(scores[0].score, 14.0);
  EXPECT_EQ(scores[1].peer, 2);
  EXPECT_DOUBLE_EQ(scores[1].score, 5.0);
}

TEST(AggregateTest, ProductMultiplies) {
  std::vector<std::unordered_map<int, double>> levels{
      {{1, 2.0}},
      {{1, 3.0}},
  };
  const auto scores = AggregateScores(levels, ScorePolicy::kProduct);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0].score, 6.0);
}

TEST(AggregateTest, SortedDescendingWithDeterministicTies) {
  std::vector<std::unordered_map<int, double>> levels{
      {{3, 5.0}, {1, 5.0}, {2, 9.0}},
  };
  const auto scores = AggregateScores(levels, ScorePolicy::kMin);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].peer, 2);
  EXPECT_EQ(scores[1].peer, 1);  // tie broken by id
  EXPECT_EQ(scores[2].peer, 3);
}

TEST(AggregateTest, EmptyLevelsYieldNothing) {
  EXPECT_TRUE(AggregateScores({}, ScorePolicy::kMin).empty());
  std::vector<std::unordered_map<int, double>> levels{{}, {}};
  EXPECT_TRUE(AggregateScores(levels, ScorePolicy::kMin).empty());
}

}  // namespace
}  // namespace hyperm::core
