#include "hyperm/key_mapper.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::core {
namespace {

TEST(KeyMapperTest, MapsBoundsInsideUnitCube) {
  Bounds bounds;
  bounds.lo = {-2.0, 0.0};
  bounds.hi = {2.0, 1.0};
  const KeyMapper mapper = KeyMapper::FromBounds(bounds, 0.05);
  const Vector lo_key = mapper.ToKey(bounds.lo);
  const Vector hi_key = mapper.ToKey(bounds.hi);
  for (double v : lo_key) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (double v : hi_key) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  // Margin respected on the widest dimension.
  EXPECT_NEAR(lo_key[0], 0.05, 1e-12);
  EXPECT_NEAR(hi_key[0], 0.95, 1e-12);
}

TEST(KeyMapperTest, UniformScalePreservesDistanceRatios) {
  Bounds bounds;
  bounds.lo = {0.0, -5.0};
  bounds.hi = {10.0, 5.0};
  const KeyMapper mapper = KeyMapper::FromBounds(bounds, 0.1);
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Vector a{rng.Uniform(0.0, 10.0), rng.Uniform(-5.0, 5.0)};
    Vector b{rng.Uniform(0.0, 10.0), rng.Uniform(-5.0, 5.0)};
    const double original = vec::Distance(a, b);
    const double mapped = vec::Distance(mapper.ToKey(a), mapper.ToKey(b));
    EXPECT_NEAR(mapped, original * mapper.scale(), 1e-9);
  }
}

TEST(KeyMapperTest, RadiusScalesWithSameFactor) {
  Bounds bounds;
  bounds.lo = {0.0};
  bounds.hi = {4.0};
  const KeyMapper mapper = KeyMapper::FromBounds(bounds, 0.0);
  EXPECT_NEAR(mapper.ToKeyRadius(2.0), 2.0 * mapper.scale(), 1e-12);
  const geom::Sphere s = mapper.ToKeySphere(Vector{2.0}, 1.0);
  EXPECT_NEAR(s.radius, mapper.scale(), 1e-12);
  EXPECT_NEAR(s.center[0], 0.5, 1e-12);
}

TEST(KeyMapperTest, OutOfBoundsPointsClamped) {
  Bounds bounds;
  bounds.lo = {0.0};
  bounds.hi = {1.0};
  const KeyMapper mapper = KeyMapper::FromBounds(bounds, 0.05);
  const Vector low = mapper.ToKey(Vector{-100.0});
  const Vector high = mapper.ToKey(Vector{100.0});
  EXPECT_EQ(low[0], 0.0);
  EXPECT_LT(high[0], 1.0);
  EXPECT_GT(high[0], 0.99);
}

TEST(KeyMapperTest, DegenerateBoundsStillUsable) {
  Bounds bounds;
  bounds.lo = {3.0};
  bounds.hi = {3.0};
  const KeyMapper mapper = KeyMapper::FromBounds(bounds, 0.05);
  const Vector key = mapper.ToKey(Vector{3.0});
  EXPECT_GE(key[0], 0.0);
  EXPECT_LT(key[0], 1.0);
}

TEST(KeyMapperTest, NarrowDimensionsOccupyProportionalSlice) {
  // Dim 0 spans 10, dim 1 spans 1: after uniform scaling dim 1 occupies a
  // tenth of the cube's extent.
  Bounds bounds;
  bounds.lo = {0.0, 0.0};
  bounds.hi = {10.0, 1.0};
  const KeyMapper mapper = KeyMapper::FromBounds(bounds, 0.0);
  const Vector hi_key = mapper.ToKey(bounds.hi);
  EXPECT_NEAR(hi_key[1], 0.1, 1e-9);
}

}  // namespace
}  // namespace hyperm::core
