#include "overlay/ring_overlay.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::overlay {
namespace {

std::unique_ptr<RingOverlay> MakeRing(int nodes, sim::NetworkStats* stats,
                                      uint64_t seed = 11) {
  Rng rng(seed);
  Result<std::unique_ptr<RingOverlay>> result = RingOverlay::Build(nodes, stats, rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(RingBuildTest, RejectsBadArguments) {
  sim::NetworkStats stats;
  Rng rng(1);
  EXPECT_FALSE(RingOverlay::Build(0, &stats, rng).ok());
}

TEST(RingBuildTest, ArcsPartitionTheInterval) {
  sim::NetworkStats stats;
  auto ring = MakeRing(32, &stats);
  EXPECT_EQ(ring->num_nodes(), 32);
  EXPECT_EQ(ring->arc_start(0), 0.0);
  // Every key has exactly one owner and ownership is monotone in the key.
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.NextDouble();
    const NodeId owner = ring->OwnerOf(x);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, ring->num_nodes());
    EXPECT_LE(ring->arc_start(owner), x);
  }
}

TEST(RingInsertTest, StoredAtOwnerAndReplicatedOverInterval) {
  sim::NetworkStats stats;
  auto ring = MakeRing(16, &stats);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5}, 0.2};
  c.owner_peer = 3;
  c.items = 5;
  c.cluster_id = 1;
  Result<InsertReceipt> receipt = ring->Insert(c, 0);
  ASSERT_TRUE(receipt.ok());
  // Every node owning part of [0.3, 0.7] holds the cluster.
  int holders = 0;
  for (const NodeStorage& s : ring->StorageDistribution()) {
    if (s.clusters > 0) ++holders;
  }
  EXPECT_EQ(holders, 1 + receipt->replicas);
  EXPECT_GT(holders, 1);
}

TEST(RingInsertTest, RejectsWrongDimension) {
  sim::NetworkStats stats;
  auto ring = MakeRing(4, &stats);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5, 0.5}, 0.1};
  EXPECT_FALSE(ring->Insert(c, 0).ok());
}

TEST(RingQueryTest, FindsAllIntersectingClusters) {
  sim::NetworkStats stats;
  auto ring = MakeRing(16, &stats);
  Rng rng(3);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 30; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble()}, rng.Uniform(0.0, 0.1)};
    c.owner_peer = static_cast<int>(id % 7);
    c.items = 2;
    c.cluster_id = id;
    ASSERT_TRUE(ring->Insert(c, 0).ok());
    all.push_back(c);
  }
  for (int trial = 0; trial < 40; ++trial) {
    geom::Sphere query{{rng.NextDouble()}, rng.Uniform(0.0, 0.25)};
    Result<RangeQueryResult> result = ring->RangeQuery(query, 0);
    ASSERT_TRUE(result.ok());
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) found.insert(c.cluster_id);
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u)
          << "trial " << trial << " cluster " << c.cluster_id;
    }
  }
}

TEST(RingRoutingTest, LogarithmicHopsOnAverage) {
  sim::NetworkStats stats;
  auto ring = MakeRing(128, &stats, 17);
  stats.Reset();
  Rng rng(5);
  PublishedCluster c;
  c.items = 1;
  int total_hops = 0;
  const int inserts = 100;
  for (int i = 0; i < inserts; ++i) {
    c.sphere = geom::Sphere{{rng.NextDouble()}, 0.0};
    c.cluster_id = static_cast<uint64_t>(i + 1);
    Result<InsertReceipt> receipt =
        ring->Insert(c, static_cast<NodeId>(rng.NextIndex(128)));
    ASSERT_TRUE(receipt.ok());
    total_hops += receipt->routing_hops;
  }
  // Finger routing should average far below the linear N/4 = 32 bound.
  EXPECT_LT(static_cast<double>(total_hops) / inserts, 12.0);
}

TEST(RingStorageTest, ClearStorage) {
  sim::NetworkStats stats;
  auto ring = MakeRing(8, &stats);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.4}, 0.05};
  c.cluster_id = 9;
  c.items = 1;
  ASSERT_TRUE(ring->Insert(c, 0).ok());
  ring->ClearStorage();
  for (const NodeStorage& s : ring->StorageDistribution()) EXPECT_EQ(s.clusters, 0);
}

}  // namespace
}  // namespace hyperm::overlay
