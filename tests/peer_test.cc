#include "hyperm/peer.h"

#include <gtest/gtest.h>

namespace hyperm::core {
namespace {

Peer MakePeer() {
  Peer peer(3);
  peer.AddItem(10, {0.0, 0.0});
  peer.AddItem(11, {1.0, 0.0});
  peer.AddItem(12, {0.0, 2.0});
  peer.AddItem(13, {5.0, 5.0});
  return peer;
}

TEST(PeerTest, BasicAccessors) {
  const Peer peer = MakePeer();
  EXPECT_EQ(peer.id(), 3);
  EXPECT_EQ(peer.num_items(), 4u);
  EXPECT_EQ(peer.item_ids(), (std::vector<ItemId>{10, 11, 12, 13}));
}

TEST(PeerTest, RangeSearchInclusiveBoundary) {
  const Peer peer = MakePeer();
  const std::vector<ItemId> hits = peer.RangeSearch({0.0, 0.0}, 1.0);
  EXPECT_EQ(hits, (std::vector<ItemId>{10, 11}));  // distance 1.0 included
}

TEST(PeerTest, RangeSearchZeroRadiusIsPointLookup) {
  const Peer peer = MakePeer();
  EXPECT_EQ(peer.RangeSearch({5.0, 5.0}, 0.0), (std::vector<ItemId>{13}));
  EXPECT_TRUE(peer.RangeSearch({9.0, 9.0}, 0.0).empty());
}

TEST(PeerTest, NearestItemsOrderedByDistance) {
  const Peer peer = MakePeer();
  const std::vector<ItemId> nearest = peer.NearestItems({0.0, 0.0}, 3);
  EXPECT_EQ(nearest, (std::vector<ItemId>{10, 11, 12}));
}

TEST(PeerTest, NearestItemsClampedToStoreSize) {
  const Peer peer = MakePeer();
  EXPECT_EQ(peer.NearestItems({0.0, 0.0}, 100).size(), 4u);
  EXPECT_TRUE(peer.NearestItems({0.0, 0.0}, 0).empty());
}

TEST(PeerTest, EmptyPeer) {
  const Peer peer(0);
  EXPECT_TRUE(peer.RangeSearch({1.0}, 5.0).empty());
  EXPECT_TRUE(peer.NearestItems({1.0}, 3).empty());
}

}  // namespace
}  // namespace hyperm::core
