// Chrome trace-event exporter tests (obs/chrome_trace.h): a synthetic flight
// recorder log exports to a Perfetto-loadable document that its own validator
// accepts; saturated logs (missing pair endpoints) degrade pairs to instants
// instead of emitting dangling flows; the validator rejects the malformed
// documents CI must catch.

#include "obs/chrome_trace.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/event_log.h"
#include "obs/json.h"

namespace hyperm::obs {
namespace {

class ChromeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { EventLog::Global().Reset(); }
  void TearDown() override { EventLog::Global().Reset(); }
};

// One query: plan, a probe round whose message is dropped once (partition)
// then delivered on retry, outcome, level final, done — plus channel and
// mobility colour.
void RecordCompleteQuery(EventLog& log) {
  log.Arm();
  HM_OBS_QUERY_SCOPE(qid);
  HM_OBS_EVENT(.sim_ms = 100.0, .kind = EventKind::kQueryPlan, .src = 0,
               .aux = 1);
  HM_OBS_EVENT(.sim_ms = 100.0, .kind = EventKind::kProbeIssue, .level = 0,
               .attempt = 0, .src = 0);
  {
    HM_OBS_LEVEL_SCOPE(0);
    HM_OBS_MSG_SCOPE(mid);
    (void)mid;
    HM_OBS_EVENT(.sim_ms = 101.0, .kind = EventKind::kMsgSend, .src = 0,
                 .dst = 3, .value = 64.0);
    HM_OBS_EVENT(.sim_ms = 101.5, .kind = EventKind::kTxAirtime, .src = 0,
                 .dst = 3, .value = 0.6, .aux = 1);
    HM_OBS_EVENT(.sim_ms = 103.0, .kind = EventKind::kMsgDrop, .attempt = 0,
                 .src = 0, .dst = 3, .cause = 3, .value = 8.0);
    HM_OBS_EVENT(.sim_ms = 112.0, .kind = EventKind::kMsgDeliver, .attempt = 1,
                 .src = 0, .dst = 3, .cause = 0, .value = 11.0);
  }
  HM_OBS_EVENT(.sim_ms = 113.0, .kind = EventKind::kProbeOutcome, .level = 0,
               .attempt = 0, .src = 0, .cause = 0, .value = 13.0);
  HM_OBS_EVENT(.sim_ms = 113.0, .kind = EventKind::kLevelFinal, .level = 0,
               .cause = 0, .value = 13.0);
  HM_OBS_EVENT(.sim_ms = 150.0, .kind = EventKind::kMobilityTick, .aux = 2);
  HM_OBS_EVENT(.sim_ms = 160.0, .kind = EventKind::kQueryDone,
               .query_id = qid, .src = 0, .value = 13.0, .aux = 4);
  HM_OBS_SERIES("probe.islands", 150.0, 2.0);
}

TEST_F(ChromeTraceTest, ExportValidatesAndCarriesStructure) {
  EventLog& log = EventLog::Global();
  RecordCompleteQuery(log);
  const Json doc = ChromeTraceFromLog(log);
  EXPECT_TRUE(ValidateChromeTrace(doc).ok())
      << ValidateChromeTrace(doc).ToString();

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("displayTimeUnit")->as_string(), "ms");
  const Json* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("recorded_events")->as_number(), 10.0);
  EXPECT_EQ(other->Find("dropped_events")->as_number(), 0.0);

  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int metadata = 0, flows_s = 0, flows_f = 0, asyncs_b = 0, asyncs_e = 0;
  int counters = 0, slices = 0;
  bool peer_track_named = false;
  for (const Json& e : events->items()) {
    const std::string& ph = e.Find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      const Json* args = e.Find("args");
      if (args != nullptr && args->Find("name") != nullptr &&
          args->Find("name")->as_string() == "peer 0") {
        peer_track_named = true;
      }
    }
    if (ph == "s") ++flows_s;
    if (ph == "f") ++flows_f;
    if (ph == "b") ++asyncs_b;
    if (ph == "e") ++asyncs_e;
    if (ph == "C") ++counters;
    if (ph == "X") ++slices;
  }
  EXPECT_GE(metadata, 3);  // process_name + sim + at least one peer track
  EXPECT_TRUE(peer_track_named);
  EXPECT_EQ(flows_s, 1);  // the delivered message's flow, sent...
  EXPECT_EQ(flows_f, 1);  // ...and received on the dst peer's track
  EXPECT_EQ(asyncs_b, 2);  // query span + probe round span
  EXPECT_EQ(asyncs_e, 2);
  EXPECT_EQ(counters, 2);  // islands tick + probe.islands series sample
  EXPECT_EQ(slices, 1);    // the airtime X slice
}

TEST_F(ChromeTraceTest, IncompletePairsDegradeToInstants) {
  EventLog& log = EventLog::Global();
  log.Arm();
  // A send whose deliver fell out of the buffer, a plan whose done is
  // missing, a probe issue with no outcome: none may emit dangling pairs.
  HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kQueryPlan, .query_id = 7,
               .src = 0, .aux = 1);
  HM_OBS_EVENT(.sim_ms = 2.0, .kind = EventKind::kProbeIssue, .query_id = 7,
               .level = 0, .attempt = 0, .src = 0);
  HM_OBS_EVENT(.sim_ms = 3.0, .kind = EventKind::kMsgSend, .msg_id = 5,
               .src = 0, .dst = 1, .value = 64.0);
  const Json doc = ChromeTraceFromLog(log);
  EXPECT_TRUE(ValidateChromeTrace(doc).ok())
      << ValidateChromeTrace(doc).ToString();
  for (const Json& e : doc.Find("traceEvents")->items()) {
    const std::string& ph = e.Find("ph")->as_string();
    EXPECT_TRUE(ph == "M" || ph == "i") << "unexpected phase " << ph;
  }
}

TEST_F(ChromeTraceTest, ValidatorRejectsUnsortedTimestamps) {
  Json doc = Json::Object();
  Json events = Json::Array();
  Json a = Json::Object();
  a.Set("ph", Json("i"));
  a.Set("name", Json("later"));
  a.Set("tid", Json(0));
  a.Set("ts", Json(200.0));
  a.Set("s", Json("t"));
  events.Append(std::move(a));
  Json b = Json::Object();
  b.Set("ph", Json("i"));
  b.Set("name", Json("earlier"));
  b.Set("tid", Json(0));
  b.Set("ts", Json(100.0));
  b.Set("s", Json("t"));
  events.Append(std::move(b));
  doc.Set("traceEvents", std::move(events));
  const Status status = ValidateChromeTrace(doc);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("not sorted"), std::string::npos);
}

TEST_F(ChromeTraceTest, ValidatorRejectsUnpairedFlow) {
  Json doc = Json::Object();
  Json events = Json::Array();
  Json s = Json::Object();
  s.Set("ph", Json("s"));
  s.Set("name", Json("msg 1"));
  s.Set("cat", Json("msg"));
  s.Set("tid", Json(0));
  s.Set("ts", Json(1.0));
  s.Set("id", Json(1));
  events.Append(std::move(s));
  doc.Set("traceEvents", std::move(events));
  const Status status = ValidateChromeTrace(doc);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unpaired flow"), std::string::npos);
}

TEST_F(ChromeTraceTest, ValidatorRejectsFinishBeforeStartAndUnknownPhase) {
  {
    Json doc = Json::Object();
    Json events = Json::Array();
    Json f = Json::Object();
    f.Set("ph", Json("f"));
    f.Set("name", Json("msg 1"));
    f.Set("cat", Json("msg"));
    f.Set("tid", Json(0));
    f.Set("ts", Json(1.0));
    f.Set("id", Json(1));
    events.Append(std::move(f));
    doc.Set("traceEvents", std::move(events));
    EXPECT_FALSE(ValidateChromeTrace(doc).ok());
  }
  {
    Json doc = Json::Object();
    Json events = Json::Array();
    Json z = Json::Object();
    z.Set("ph", Json("Z"));
    z.Set("name", Json("what"));
    z.Set("tid", Json(0));
    z.Set("ts", Json(1.0));
    events.Append(std::move(z));
    doc.Set("traceEvents", std::move(events));
    const Status status = ValidateChromeTrace(doc);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("unexpected phase"), std::string::npos);
  }
}

TEST_F(ChromeTraceTest, ValidatorRejectsXWithoutDuration) {
  Json doc = Json::Object();
  Json events = Json::Array();
  Json x = Json::Object();
  x.Set("ph", Json("X"));
  x.Set("name", Json("tx"));
  x.Set("tid", Json(0));
  x.Set("ts", Json(1.0));
  events.Append(std::move(x));
  doc.Set("traceEvents", std::move(events));
  EXPECT_FALSE(ValidateChromeTrace(doc).ok());
}

}  // namespace
}  // namespace hyperm::obs
