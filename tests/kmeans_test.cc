#include "cluster/kmeans.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::cluster {
namespace {

// Three well-separated gaussian blobs in 2-D.
std::vector<Vector> ThreeBlobs(Rng& rng, int per_blob = 50) {
  const std::vector<Vector> centers{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  std::vector<Vector> points;
  for (const Vector& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({c[0] + rng.Gaussian(0.0, 0.3), c[1] + rng.Gaussian(0.0, 0.3)});
    }
  }
  return points;
}

TEST(KMeansTest, RejectsBadInput) {
  Rng rng(1);
  EXPECT_FALSE(KMeans({}, KMeansOptions{}, rng).ok());
  KMeansOptions bad;
  bad.k = 0;
  EXPECT_FALSE(KMeans({{1.0}}, bad, rng).ok());
}

TEST(KMeansTest, RejectsInconsistentDimensions) {
  Rng rng(1);
  std::vector<Vector> points{{1.0, 2.0}, {1.0}};
  EXPECT_FALSE(KMeans(points, KMeansOptions{}, rng).ok());
}

TEST(KMeansTest, SinglePoint) {
  Rng rng(2);
  KMeansOptions options;
  options.k = 3;
  Result<KMeansResult> r = KMeans({{1.0, 2.0}}, options, rng);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->clusters.size(), 1u);
  EXPECT_EQ(r->clusters[0].centroid, (Vector{1.0, 2.0}));
  EXPECT_EQ(r->clusters[0].radius, 0.0);
  EXPECT_EQ(r->clusters[0].count, 1);
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  Rng rng(3);
  const std::vector<Vector> points = ThreeBlobs(rng);
  KMeansOptions options;
  options.k = 3;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->clusters.size(), 3u);
  // Every blob center has a centroid within 0.5.
  for (const Vector& blob : {Vector{0.0, 0.0}, Vector{10.0, 0.0}, Vector{0.0, 10.0}}) {
    double best = 1e9;
    for (const SphereCluster& c : r->clusters) {
      best = std::fmin(best, vec::Distance(blob, c.centroid));
    }
    EXPECT_LT(best, 0.5);
  }
}

TEST(KMeansTest, CountsConserveItems) {
  Rng rng(4);
  const std::vector<Vector> points = ThreeBlobs(rng, 33);
  KMeansOptions options;
  options.k = 7;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  int total = 0;
  for (const SphereCluster& c : r->clusters) {
    EXPECT_GT(c.count, 0);
    total += c.count;
  }
  EXPECT_EQ(total, static_cast<int>(points.size()));
  EXPECT_EQ(r->assignments.size(), points.size());
}

TEST(KMeansTest, RadiusCoversEveryMember) {
  Rng rng(5);
  const std::vector<Vector> points = ThreeBlobs(rng);
  KMeansOptions options;
  options.k = 5;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    const SphereCluster& c = r->clusters[static_cast<size_t>(r->assignments[i])];
    EXPECT_LE(vec::Distance(points[i], c.centroid), c.radius + 1e-9);
  }
}

TEST(KMeansTest, AssignmentsAreNearestCentroid) {
  Rng rng(6);
  const std::vector<Vector> points = ThreeBlobs(rng);
  KMeansOptions options;
  options.k = 4;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    const double assigned =
        vec::SquaredDistance(points[i], r->clusters[static_cast<size_t>(r->assignments[i])].centroid);
    for (const SphereCluster& c : r->clusters) {
      EXPECT_LE(assigned, vec::SquaredDistance(points[i], c.centroid) + 1e-9);
    }
  }
}

TEST(KMeansTest, InertiaMatchesDefinition) {
  Rng rng(7);
  const std::vector<Vector> points = ThreeBlobs(rng, 20);
  KMeansOptions options;
  options.k = 3;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  double inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    inertia += vec::SquaredDistance(
        points[i], r->clusters[static_cast<size_t>(r->assignments[i])].centroid);
  }
  EXPECT_NEAR(r->inertia, inertia, 1e-9);
}

TEST(KMeansTest, MoreClustersNeverHurtMuch) {
  Rng rng(8);
  const std::vector<Vector> points = ThreeBlobs(rng);
  double prev_inertia = 1e18;
  for (int k : {1, 3, 10}) {
    KMeansOptions options;
    options.k = k;
    Rng local(42);
    Result<KMeansResult> r = KMeans(points, options, local);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->inertia, prev_inertia * 1.05);
    prev_inertia = r->inertia;
  }
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(9);
  std::vector<Vector> points{{0.0}, {1.0}, {2.0}};
  KMeansOptions options;
  options.k = 10;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->clusters.size(), 3u);
}

TEST(KMeansTest, DeterministicGivenRngState) {
  const std::vector<Vector> points = [] {
    Rng data_rng(10);
    return ThreeBlobs(data_rng);
  }();
  KMeansOptions options;
  options.k = 4;
  Rng a(55), b(55);
  Result<KMeansResult> ra = KMeans(points, options, a);
  Result<KMeansResult> rb = KMeans(points, options, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->assignments, rb->assignments);
  EXPECT_DOUBLE_EQ(ra->inertia, rb->inertia);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  Rng rng(11);
  std::vector<Vector> points(20, Vector{1.0, 1.0});
  KMeansOptions options;
  options.k = 4;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  int total = 0;
  for (const SphereCluster& c : r->clusters) {
    total += c.count;
    EXPECT_EQ(c.radius, 0.0);
  }
  EXPECT_EQ(total, 20);
}

TEST(KMeansTest, UniformSeedingAlsoWorks) {
  Rng rng(12);
  const std::vector<Vector> points = ThreeBlobs(rng);
  KMeansOptions options;
  options.k = 3;
  options.plus_plus_seeding = false;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 3u);
}

TEST(SummarizeTest, BuildsTightSphere) {
  std::vector<Vector> points{{0.0, 0.0}, {2.0, 0.0}};
  SphereCluster c = Summarize(points);
  EXPECT_EQ(c.centroid, (Vector{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(c.radius, 1.0);
  EXPECT_EQ(c.count, 2);
}

}  // namespace
}  // namespace hyperm::cluster
