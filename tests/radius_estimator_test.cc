#include "geom/radius_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::geom {
namespace {

TEST(ExpectedItemsTest, ZeroRadiusGivesZeroForProperClusters) {
  std::vector<ClusterView> clusters{{1.0, 2.0, 50}};
  EXPECT_EQ(ExpectedItems(4, clusters, 0.0), 0.0);
}

TEST(ExpectedItemsTest, FullCoverage) {
  std::vector<ClusterView> clusters{{1.0, 2.0, 50}, {0.5, 1.0, 30}};
  // eps larger than every b + r.
  EXPECT_NEAR(ExpectedItems(4, clusters, 10.0), 80.0, 1e-9);
}

TEST(ExpectedItemsTest, PointClustersStep) {
  std::vector<ClusterView> clusters{{0.0, 1.0, 10}};
  EXPECT_EQ(ExpectedItems(3, clusters, 0.5), 0.0);
  EXPECT_EQ(ExpectedItems(3, clusters, 1.0), 10.0);
  EXPECT_EQ(ExpectedItems(3, clusters, 2.0), 10.0);
}

TEST(ExpectedItemsTest, MonotoneInEps) {
  std::vector<ClusterView> clusters{{1.0, 1.5, 40}, {2.0, 4.0, 25}, {0.0, 2.5, 5}};
  double prev = -1.0;
  for (double eps = 0.0; eps <= 8.0; eps += 0.1) {
    const double e = ExpectedItems(6, clusters, eps);
    EXPECT_GE(e, prev - 1e-9);
    prev = e;
  }
}

TEST(SolveRadiusTest, RejectsBadInput) {
  EXPECT_FALSE(SolveRadiusForCount(3, {}, 5.0).ok());
  std::vector<ClusterView> clusters{{1.0, 2.0, 10}};
  EXPECT_FALSE(SolveRadiusForCount(3, clusters, 0.0).ok());
  EXPECT_FALSE(SolveRadiusForCount(3, clusters, -1.0).ok());
}

TEST(SolveRadiusTest, RejectsKBeyondTotal) {
  std::vector<ClusterView> clusters{{1.0, 2.0, 10}};
  Result<double> r = SolveRadiusForCount(3, clusters, 11.0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(SolveRadiusTest, RoundTripsForwardModel) {
  std::vector<ClusterView> clusters{{1.0, 1.5, 40}, {2.0, 4.0, 25}, {0.5, 2.5, 15}};
  for (double k : {1.0, 5.0, 20.0, 50.0, 79.0}) {
    Result<double> eps = SolveRadiusForCount(5, clusters, k);
    ASSERT_TRUE(eps.ok()) << "k=" << k << ": " << eps.status().ToString();
    EXPECT_NEAR(ExpectedItems(5, clusters, eps.value()), k, 0.01) << "k=" << k;
  }
}

TEST(SolveRadiusTest, ExactTotalIsSolvable) {
  std::vector<ClusterView> clusters{{1.0, 1.0, 10}, {1.0, 3.0, 10}};
  Result<double> eps = SolveRadiusForCount(2, clusters, 20.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_NEAR(ExpectedItems(2, clusters, eps.value()), 20.0, 0.05);
}

TEST(SolveRadiusTest, SingleClusterHalfCoverage) {
  // One cluster centered at the query: E(eps) = (eps/r)^d * items while
  // eps <= r, so E = items/2 at eps = r * (1/2)^(1/d).
  std::vector<ClusterView> clusters{{2.0, 0.0, 64}};
  Result<double> eps = SolveRadiusForCount(3, clusters, 32.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_NEAR(eps.value(), 2.0 * std::pow(0.5, 1.0 / 3.0), 1e-2);
}

TEST(SolveRadiusTest, ManyRandomInstancesRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int d = static_cast<int>(rng.UniformInt(1, 16));
    std::vector<ClusterView> clusters;
    double total = 0.0;
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      ClusterView c;
      c.radius = rng.Uniform(0.0, 2.0);
      c.center_distance = rng.Uniform(0.0, 5.0);
      c.items = static_cast<int>(rng.UniformInt(1, 100));
      total += c.items;
      clusters.push_back(c);
    }
    const double k = rng.Uniform(0.5, total);
    Result<double> eps = SolveRadiusForCount(d, clusters, k);
    ASSERT_TRUE(eps.ok()) << "trial " << trial;
    // Point clusters make E a step function, so allow a unit of slack.
    EXPECT_NEAR(ExpectedItems(d, clusters, eps.value()), k, 1.0) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hyperm::geom
