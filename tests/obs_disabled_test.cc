// Compile check for the observability kill switch: this target is built with
// HYPERM_OBS_DISABLED defined (see tests/CMakeLists.txt), so every HM_OBS_*
// macro must compile to a no-op that does not evaluate its arguments, while
// the obs classes themselves stay fully usable.

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef HYPERM_OBS_DISABLED
#error "obs_disabled_test must be compiled with HYPERM_OBS_DISABLED"
#endif

namespace hyperm::obs {
namespace {

int SideEffect(int* calls) {
  ++(*calls);
  return 1;
}

TEST(ObsDisabledTest, MacrosAreInertAndDoNotEvaluateArguments) {
  MetricsRegistry::Global().Reset();
  Tracer::Global().Reset();
  int calls = 0;
  {
    HM_OBS_SPAN("disabled/span");
    HM_OBS_COUNTER_ADD("disabled.counter", SideEffect(&calls));
    HM_OBS_GAUGE_SET("disabled.gauge", SideEffect(&calls));
    HM_OBS_HISTOGRAM("disabled.hist", Buckets::Linear(0.0, 1.0, 1),
                     SideEffect(&calls));
    HM_OBS_TIMER("disabled.timer", Buckets::Linear(0.0, 1.0, 1));
  }
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(Tracer::Global().spans().empty());
  // Only metrics registered before Reset could appear; the macros added none.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counters.count("disabled.counter"), 0u);
  EXPECT_EQ(snap.gauges.count("disabled.gauge"), 0u);
  EXPECT_EQ(snap.histograms.count("disabled.hist"), 0u);
}

TEST(ObsDisabledTest, FlightRecorderMacrosAreInert) {
  EventLog::Global().Reset();
  EventLog::Global().Arm();  // even armed, the disabled macros record nothing
  int calls = 0;
  {
    // Scope macros must still declare their id variables (call sites read
    // them), but as -1 and without drawing from the id counters.
    HM_OBS_QUERY_SCOPE(qid);
    EXPECT_EQ(qid, -1);
    HM_OBS_MSG_SCOPE(mid);
    EXPECT_EQ(mid, -1);
    HM_OBS_LEVEL_SCOPE(SideEffect(&calls));
    HM_OBS_ROOT_SCOPE();
    HM_OBS_EVENT(.sim_ms = 1.0, .kind = EventKind::kMsgSend,
                 .src = SideEffect(&calls));
    HM_OBS_SERIES("disabled.series", 1.0, SideEffect(&calls));
  }
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(EventLog::Global().events().empty());
  EXPECT_TRUE(EventLog::Global().series().empty());
  EventLog::Global().Reset();
}

TEST(ObsDisabledTest, EventLogClassStaysUsableUnderKillSwitch) {
  // Direct (non-macro) use keeps working: exporters and offline tooling that
  // reconstruct timelines from saved logs must not depend on the macros.
  EventLog::Global().Reset();
  EventLog::Global().Arm(/*capacity=*/8);
  Event event;
  event.sim_ms = 2.0;
  event.kind = EventKind::kQueryPlan;
  event.query_id = 11;
  EventLog::Global().Record(event);
  ASSERT_EQ(EventLog::Global().events().size(), 1u);
  const std::string jsonl = EventsToJsonl(EventLog::Global().events(),
                                          EventLog::Global().dropped());
  EXPECT_NE(jsonl.find("\"kind\":\"query_plan\""), std::string::npos);
  EventLog::Global().Reset();
}

TEST(ObsDisabledTest, ClassesStayUsableUnderKillSwitch) {
  // The kill switch only removes the macro instrumentation; direct use of the
  // registry/tracer/exporter must keep working (exporters, merge tools).
  MetricsRegistry registry;
  registry.GetCounter("manual").Add(2);
  Tracer tracer;
  tracer.End(tracer.Begin("manual"));
  const Json report =
      ReportToJson(RunMeta{"disabled_test"}, registry.Snapshot(), tracer.spans());
  EXPECT_EQ(report.Find("run_meta")->Find("bench")->as_string(), "disabled_test");
  EXPECT_DOUBLE_EQ(
      report.Find("metrics")->Find("counters")->Find("manual")->as_number(), 2.0);
  EXPECT_EQ(report.Find("spans")->items().size(), 1u);
}

}  // namespace
}  // namespace hyperm::obs
