#include "wavelet/level.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/vector.h"
#include "wavelet/haar.h"

namespace hyperm::wavelet {
namespace {

TEST(LevelTest, NamesAndDims) {
  EXPECT_EQ(Level::Approximation().name(), "A");
  EXPECT_EQ(Level::Approximation().dim(), 1u);
  EXPECT_EQ(Level::Detail(0).name(), "D0");
  EXPECT_EQ(Level::Detail(0).dim(), 1u);
  EXPECT_EQ(Level::Detail(3).name(), "D3");
  EXPECT_EQ(Level::Detail(3).dim(), 8u);
}

TEST(LevelTest, Equality) {
  EXPECT_EQ(Level::Approximation(), Level::Approximation());
  EXPECT_EQ(Level::Detail(2), Level::Detail(2));
  EXPECT_FALSE(Level::Detail(1) == Level::Detail(2));
  EXPECT_FALSE(Level::Approximation() == Level::Detail(0));
}

TEST(LevelTest, ProjectSelectsSubspaces) {
  Result<Pyramid> p = Decompose(Vector{1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(Project(*p, Level::Approximation()).size(), 1u);
  EXPECT_EQ(Project(*p, Level::Detail(0)).size(), 1u);
  EXPECT_EQ(Project(*p, Level::Detail(1)).size(), 2u);
  EXPECT_EQ(&Project(*p, Level::Approximation()), &p->approximation);
}

TEST(LevelTest, RadiusScaleFormula) {
  // d = 2^m. For A and D_0 the scale is 2^{-m/2}; for D_l it is 2^{-(m-l)/2}.
  const int m = 9;  // d = 512
  EXPECT_NEAR(RadiusScale(m, Level::Approximation()), std::pow(2.0, -4.5), 1e-12);
  EXPECT_NEAR(RadiusScale(m, Level::Detail(0)), std::pow(2.0, -4.5), 1e-12);
  EXPECT_NEAR(RadiusScale(m, Level::Detail(8)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(RadiusScale(m, Level::Detail(5)), std::pow(2.0, -2.0), 1e-12);
}

TEST(LevelTest, DefaultLevelsLayout) {
  const std::vector<Level> levels = DefaultLevels(9, 4);
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], Level::Approximation());
  EXPECT_EQ(levels[1], Level::Detail(0));
  EXPECT_EQ(levels[2], Level::Detail(1));
  EXPECT_EQ(levels[3], Level::Detail(2));
}

TEST(LevelTest, DefaultLevelsSingleLayer) {
  const std::vector<Level> levels = DefaultLevels(9, 1);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], Level::Approximation());
}

// Property: Theorem 3.1. Points inside a sphere of radius r map inside a
// sphere of radius r * RadiusScale(level) around the projected center, at
// every level.
class RadiusContraction : public ::testing::TestWithParam<int> {};

TEST_P(RadiusContraction, Theorem31HoldsEmpirically) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int dim = 64;
  const int m = 6;
  const double r = 2.0;

  // Random center.
  Vector center(dim);
  for (double& v : center) v = rng.Uniform(-3.0, 3.0);
  Result<Pyramid> center_pyramid = Decompose(center);
  ASSERT_TRUE(center_pyramid.ok());

  std::vector<Level> levels = DefaultLevels(m, m + 1);
  for (int trial = 0; trial < 200; ++trial) {
    // Random point inside the sphere: gaussian direction, scaled radius.
    Vector offset(dim);
    for (double& v : offset) v = rng.Gaussian();
    const double norm = vec::Norm(offset);
    const double radius = r * std::pow(rng.NextDouble(), 1.0 / dim);
    Vector point = center;
    for (int i = 0; i < dim; ++i) {
      point[static_cast<size_t>(i)] += offset[static_cast<size_t>(i)] / norm * radius;
    }
    Result<Pyramid> point_pyramid = Decompose(point);
    ASSERT_TRUE(point_pyramid.ok());
    for (const Level& level : levels) {
      const double scaled = r * RadiusScale(m, level);
      const double dist = vec::Distance(Project(*point_pyramid, level),
                                        Project(*center_pyramid, level));
      EXPECT_LE(dist, scaled + 1e-9)
          << "level " << level.name() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadiusContraction, ::testing::Values(1, 2, 3, 4, 5));

// The contraction bound is tight: for some point the level distance gets
// close to the bound (within a factor ~1/sqrt(2) for random probes).
TEST(LevelTest, ContractionBoundIsNotVacuous) {
  Rng rng(99);
  const int dim = 16;
  const int m = 4;
  const Vector center(dim, 0.0);
  double best = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    Vector point(dim);
    for (double& v : point) v = rng.Uniform(-1.0, 1.0);
    const double norm = vec::Norm(point);
    for (double& v : point) v /= norm;  // on the unit sphere
    Result<Pyramid> p = Decompose(point);
    ASSERT_TRUE(p.ok());
    const double dist = std::fabs(p->approximation[0]);
    best = std::fmax(best, dist / RadiusScale(m, Level::Approximation()));
  }
  EXPECT_GT(best, 0.5);  // bound exercised, not off by an order of magnitude
}

}  // namespace
}  // namespace hyperm::wavelet
