#include "overlay/gossip_overlay.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::overlay {
namespace {

std::unique_ptr<GossipOverlay> MakeGossip(int nodes, int ttl,
                                          sim::NetworkStats* stats, int degree = 4,
                                          uint64_t seed = 3) {
  Rng rng(seed);
  auto result = GossipOverlay::Build(2, nodes, degree, ttl, stats, rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(GossipBuildTest, RejectsBadArguments) {
  sim::NetworkStats stats;
  Rng rng(1);
  EXPECT_FALSE(GossipOverlay::Build(0, 4, 4, -1, &stats, rng).ok());
  EXPECT_FALSE(GossipOverlay::Build(2, 0, 4, -1, &stats, rng).ok());
  EXPECT_FALSE(GossipOverlay::Build(2, 4, 1, -1, &stats, rng).ok());
}

TEST(GossipBuildTest, GraphIsConnectedWithRequestedDegree) {
  sim::NetworkStats stats;
  auto gossip = MakeGossip(32, -1, &stats);
  // Connectivity: an unbounded flood from node 0 reaches everyone.
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5, 0.5}, 0.1};
  c.items = 1;
  c.cluster_id = 1;
  ASSERT_TRUE(gossip->Insert(c, 31).ok());
  Result<RangeQueryResult> result =
      gossip->RangeQuery(geom::Sphere{{0.5, 0.5}, 0.2}, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes_visited, 32);
  ASSERT_EQ(result->matches.size(), 1u);
  // Degree: every node has at least 4 links (backbone + chords).
  for (NodeId n = 0; n < gossip->num_nodes(); ++n) {
    EXPECT_GE(gossip->links(n).size(), 4u);
  }
}

TEST(GossipInsertTest, PublicationIsFree) {
  sim::NetworkStats stats;
  auto gossip = MakeGossip(16, -1, &stats);
  stats.Reset();
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.2, 0.3}, 0.05};
  c.items = 9;
  c.cluster_id = 5;
  Result<InsertReceipt> receipt = gossip->Insert(c, 7);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->routing_hops, 0);
  EXPECT_EQ(receipt->replicas, 0);
  EXPECT_EQ(stats.total_hops(), 0u);
  // Stored at the publisher.
  bool found = false;
  for (const NodeStorage& s : gossip->StorageDistribution()) {
    if (s.node == 7) found = s.clusters == 1;
  }
  EXPECT_TRUE(found);
}

TEST(GossipQueryTest, TtlBoundsTheFloodAndCanMissAnswers) {
  sim::NetworkStats stats;
  // Degree 2 => a plain ring of 32: the farthest node is 16 hops away.
  auto gossip = MakeGossip(32, /*ttl=*/2, &stats, /*degree=*/2);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5, 0.5}, 0.1};
  c.items = 1;
  c.cluster_id = 1;
  ASSERT_TRUE(gossip->Insert(c, 16).ok());  // publisher far from node 0
  Result<RangeQueryResult> bounded =
      gossip->RangeQuery(geom::Sphere{{0.5, 0.5}, 0.2}, 0);
  ASSERT_TRUE(bounded.ok());
  EXPECT_LE(bounded->nodes_visited, 5);     // ttl 2 on a ring: <= 5 nodes
  EXPECT_TRUE(bounded->matches.empty());    // the unstructured failure mode
  // Querying next to the publisher finds it.
  Result<RangeQueryResult> near =
      gossip->RangeQuery(geom::Sphere{{0.5, 0.5}, 0.2}, 15);
  ASSERT_TRUE(near.ok());
  EXPECT_EQ(near->matches.size(), 1u);
}

TEST(GossipQueryTest, UnboundedFloodFindsEverythingOnce) {
  sim::NetworkStats stats;
  auto gossip = MakeGossip(24, -1, &stats);
  Rng rng(9);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 30; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.2)};
    c.owner_peer = static_cast<int>(id % 6);
    c.items = 1;
    c.cluster_id = id;
    ASSERT_TRUE(gossip->Insert(c, static_cast<NodeId>(rng.NextIndex(24))).ok());
    all.push_back(c);
  }
  for (int trial = 0; trial < 25; ++trial) {
    geom::Sphere query{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.0, 0.3)};
    Result<RangeQueryResult> result = gossip->RangeQuery(query, 0);
    ASSERT_TRUE(result.ok());
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) {
      EXPECT_TRUE(found.insert(c.cluster_id).second);
    }
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u);
    }
  }
}

TEST(GossipQueryTest, FloodCostCountsEveryEdgeOnce) {
  sim::NetworkStats stats;
  auto gossip = MakeGossip(16, -1, &stats);
  stats.Reset();
  Result<RangeQueryResult> result =
      gossip->RangeQuery(geom::Sphere{{0.5, 0.5}, 0.1}, 0);
  ASSERT_TRUE(result.ok());
  // Spanning flood: exactly nodes-1 forwarding edges.
  EXPECT_EQ(result->flood_hops, 15);
  EXPECT_EQ(stats.hops(sim::TrafficClass::kQuery), 15u);
}

TEST(GossipStorageTest, RemoveByOwnerAndClear) {
  sim::NetworkStats stats;
  auto gossip = MakeGossip(8, -1, &stats);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.1, 0.1}, 0.0};
  c.owner_peer = 3;
  c.items = 1;
  c.cluster_id = 2;
  ASSERT_TRUE(gossip->Insert(c, 0).ok());
  EXPECT_EQ(gossip->RemoveByOwner(3), 1);
  EXPECT_EQ(gossip->RemoveByOwner(3), 0);
  ASSERT_TRUE(gossip->Insert(c, 0).ok());
  gossip->ClearStorage();
  for (const NodeStorage& s : gossip->StorageDistribution()) EXPECT_EQ(s.clusters, 0);
}

}  // namespace
}  // namespace hyperm::overlay
