// Bit-identity oracle for the epoch-cached route trees: every ShortestPath,
// PathHops, island label and MeanPairwiseHops served from the cache must be
// identical — including the deterministic ascending-neighbour tie-break —
// to a fresh per-pair BFS, across epochs, partitions and heal/merge cycles.

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "manet/topology.h"

namespace hyperm::manet {
namespace {

// Reference: the early-exit parent-pointer BFS the topology shipped with.
std::vector<int> FreshShortestPath(const ManetTopology& t, int from, int to) {
  if (from == to) return {from};
  const size_t n = static_cast<size_t>(t.num_nodes());
  std::vector<int> parent(n, -1);
  std::deque<int> frontier;
  parent[static_cast<size_t>(from)] = from;
  frontier.push_back(from);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    if (node == to) break;
    for (int next : t.neighbors(node)) {
      if (parent[static_cast<size_t>(next)] >= 0) continue;
      parent[static_cast<size_t>(next)] = node;
      frontier.push_back(next);
    }
  }
  if (parent[static_cast<size_t>(to)] < 0) return {};
  std::vector<int> path;
  for (int node = to; node != from; node = parent[static_cast<size_t>(node)]) {
    path.push_back(node);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> FreshHops(const ManetTopology& t, int start) {
  const size_t n = static_cast<size_t>(t.num_nodes());
  std::vector<int> hops(n, -1);
  std::deque<int> frontier;
  hops[static_cast<size_t>(start)] = 0;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    for (int next : t.neighbors(node)) {
      if (hops[static_cast<size_t>(next)] >= 0) continue;
      hops[static_cast<size_t>(next)] = hops[static_cast<size_t>(node)] + 1;
      frontier.push_back(next);
    }
  }
  return hops;
}

void ExpectAllPairsMatchFreshBfs(const ManetTopology& t) {
  for (int from = 0; from < t.num_nodes(); ++from) {
    const std::vector<int> hops = FreshHops(t, from);
    for (int to = 0; to < t.num_nodes(); ++to) {
      EXPECT_EQ(t.ShortestPath(from, to), FreshShortestPath(t, from, to))
          << from << " -> " << to;
      const int h = hops[static_cast<size_t>(to)];
      EXPECT_EQ(t.PathHops(from, to), h >= 0 ? h : kUnreachableHops);
    }
  }
}

TopologyOptions SparseOptions() {
  TopologyOptions options;
  options.num_nodes = 40;
  options.field_size_m = 320.0;
  options.radio_range_m = 60.0;
  options.max_placement_attempts = 2000;
  return options;
}

TEST(RouteCacheTest, PathsMatchFreshBfsAcrossEpochs) {
  Rng rng(21);
  Result<ManetTopology> t = ManetTopology::Generate(SparseOptions(), rng);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // A sparse walk partitions and heals repeatedly; verify full all-pairs
  // bit-identity at several epochs, querying each epoch twice so the second
  // round is served entirely from cache.
  for (int step = 0; step < 60; ++step) {
    t->RandomWaypointStep(10.0, rng);
    if (step % 15 == 0) {
      ExpectAllPairsMatchFreshBfs(*t);
      ExpectAllPairsMatchFreshBfs(*t);  // cache-hit round
    }
  }
}

TEST(RouteCacheTest, PathsMatchFreshBfsUnderPartition) {
  TopologyOptions options;
  options.field_size_m = 1000.0;
  options.radio_range_m = 50.0;
  Result<ManetTopology> t = ManetTopology::FromPositions(
      options, {{10.0, 10.0}, {40.0, 10.0}, {70.0, 10.0},
                {910.0, 910.0}, {940.0, 910.0}});
  ASSERT_TRUE(t.ok());
  ExpectAllPairsMatchFreshBfs(*t);
  EXPECT_TRUE(t->SameIsland(0, 2));
  EXPECT_TRUE(t->SameIsland(3, 4));
  EXPECT_FALSE(t->SameIsland(0, 3));
  EXPECT_EQ(t->num_islands(), 2);
  // Island labels are dense, ascending-discovery numbered.
  EXPECT_EQ(t->island_labels(), (std::vector<int>{0, 0, 0, 1, 1}));
}

TEST(RouteCacheTest, MeanPairwiseHopsMatchesFreshBfs) {
  Rng rng(22);
  Result<ManetTopology> t = ManetTopology::Generate(SparseOptions(), rng);
  ASSERT_TRUE(t.ok());
  for (int round = 0; round < 3; ++round) {
    double total = 0.0;
    int pairs = 0;
    for (int i = 0; i < t->num_nodes(); ++i) {
      const std::vector<int> hops = FreshHops(*t, i);
      for (int j = 0; j < t->num_nodes(); ++j) {
        if (i == j || hops[static_cast<size_t>(j)] < 0) continue;
        total += hops[static_cast<size_t>(j)];
        ++pairs;
      }
    }
    const double want = pairs == 0 ? 0.0 : total / pairs;
    EXPECT_DOUBLE_EQ(t->MeanPairwiseHops(), want);
    t->RandomWaypointStep(12.0, rng);
  }
}

TEST(RouteCacheTest, CountersTrackHitsMissesAndInvalidations) {
  Rng rng(23);
  Result<ManetTopology> t = ManetTopology::Generate(SparseOptions(), rng);
  ASSERT_TRUE(t.ok());
  const RouteCacheCounters& c = t->route_cache_counters();
  const uint64_t base_misses = c.misses;

  // First lookup from a fresh source: one miss, no hit.
  t->ShortestPath(0, 1);
  EXPECT_EQ(c.misses, base_misses + 1);
  const uint64_t hits_after_build = c.hits;
  // Same source again, any destination: pure hits.
  t->ShortestPath(0, 2);
  t->PathHops(0, 3);
  EXPECT_EQ(c.hits, hits_after_build + 2);
  EXPECT_EQ(c.misses, base_misses + 1);
  EXPECT_EQ(t->CachedTreeCount(), 1);

  // Epoch bump: the cached tree is stale; next lookup counts an
  // invalidation plus a miss.
  const uint64_t base_invalidations = c.invalidations;
  t->RandomWaypointStep(2.0, rng);
  EXPECT_EQ(t->CachedTreeCount(), 0);
  t->ShortestPath(0, 1);
  EXPECT_EQ(c.invalidations, base_invalidations + 1);
  EXPECT_EQ(c.misses, base_misses + 2);
}

TEST(RouteCacheTest, IslandLabelsMatchReferenceRelabelAcrossMobility) {
  // Reference: BFS relabel in ascending start order over the current
  // neighbour lists (the historical RadioChannel::RelabelIslands).
  Rng rng(24);
  Result<ManetTopology> t = ManetTopology::Generate(SparseOptions(), rng);
  ASSERT_TRUE(t.ok());
  for (int step = 0; step < 40; ++step) {
    t->RandomWaypointStep(10.0, rng);
    const int n = t->num_nodes();
    std::vector<int> want(static_cast<size_t>(n), -1);
    int label = 0;
    for (int start = 0; start < n; ++start) {
      if (want[static_cast<size_t>(start)] >= 0) continue;
      std::deque<int> frontier{start};
      want[static_cast<size_t>(start)] = label;
      while (!frontier.empty()) {
        const int node = frontier.front();
        frontier.pop_front();
        for (int next : t->neighbors(node)) {
          if (want[static_cast<size_t>(next)] >= 0) continue;
          want[static_cast<size_t>(next)] = label;
          frontier.push_back(next);
        }
      }
      ++label;
    }
    EXPECT_EQ(t->island_labels(), want);
    EXPECT_EQ(t->num_islands(), label);
    EXPECT_EQ(t->connected(), label == 1);
  }
}

}  // namespace
}  // namespace hyperm::manet
