// Unit tests of the MAC seam: cause naming pinned to obs, option
// validation, legacy-stretch equivalence, CSMA/CA carrier-sense deferral,
// hidden-terminal collisions with retransmit-until-retry-limit, and
// determinism of the per-node backoff streams.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "channel/mac.h"
#include "manet/topology.h"
#include "net/transport.h"
#include "obs/event_log.h"

namespace hyperm::channel {
namespace {

net::Message QueryMsg(int src, int dst, uint64_t bytes = 100) {
  return {net::MessageType::kQueryFlood, src, dst, bytes,
          sim::TrafficClass::kQuery};
}

manet::ManetTopology DenseField(int nodes = 12, uint64_t seed = 7) {
  manet::TopologyOptions options;
  options.num_nodes = nodes;
  options.field_size_m = 150.0;
  options.radio_range_m = 60.0;
  Rng rng(seed);
  Result<manet::ManetTopology> topology =
      manet::ManetTopology::Generate(options, rng);
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  return std::move(topology).value();
}

/// Chain A(0) - B(1) - C(2): A and C are classic hidden terminals (both hear
/// B, neither hears the other).
manet::ManetTopology HiddenTerminalChain() {
  manet::TopologyOptions options;
  options.num_nodes = 3;
  options.field_size_m = 200.0;
  options.radio_range_m = 60.0;
  std::vector<Vector> positions = {Vector{10.0, 100.0}, Vector{60.0, 100.0},
                                   Vector{110.0, 100.0}};
  Result<manet::ManetTopology> topology =
      manet::ManetTopology::FromPositions(options, std::move(positions));
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  return std::move(topology).value();
}

TEST(MacCauseTest, NamesMirrorObsNumbering) {
  EXPECT_STREQ(MacCauseName(MacCause::kDeferral), "deferrals");
  EXPECT_STREQ(MacCauseName(MacCause::kCollision), "collisions");
  EXPECT_STREQ(MacCauseName(MacCause::kRetransmit), "retransmits");
  EXPECT_STREQ(MacCauseName(MacCause::kDropRetryLimit), "drops_retry_limit");
  for (int32_t c = 0; c < 4; ++c) {
    EXPECT_STREQ(obs::MacCauseName(c),
                 MacCauseName(static_cast<MacCause>(c)));
  }
}

TEST(MacOptionsTest, ValidatesKnobs) {
  EXPECT_TRUE(MacOptions{}.Validate().ok());
  MacOptions bad;
  bad.slot_ms = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = MacOptions{};
  bad.cw_min_slots = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = MacOptions{};
  bad.cw_max_slots = bad.cw_min_slots - 1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = MacOptions{};
  bad.retry_limit = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = MacOptions{};
  bad.collision_per_busy_neighbor = 1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(LegacyStretchMacTest, IdleFrameCostsSerialisationOnly) {
  manet::ManetTopology topology = DenseField();
  MacModel::AirParams air;
  LegacyStretchMac mac(&topology, air);
  const int dst = topology.neighbors(0).front();
  const FrameResult fr = mac.SendFrame(0, dst, QueryMsg(0, dst, 250), 0.0);
  EXPECT_TRUE(fr.delivered);
  EXPECT_EQ(fr.attempts, 1);
  EXPECT_DOUBLE_EQ(fr.done_ms,
                   air.tx_overhead_ms + 250.0 / air.bandwidth_bytes_per_ms);
  EXPECT_EQ(mac.counters().frames_sent, 1u);
  EXPECT_EQ(mac.counters().queued_transmissions, 0u);
  // A second frame queued at t=0 waits behind the first.
  const FrameResult second = mac.SendFrame(0, dst, QueryMsg(0, dst, 250), 0.0);
  EXPECT_GT(second.done_ms, fr.done_ms);
  EXPECT_EQ(mac.counters().queued_transmissions, 1u);
  EXPECT_GT(mac.queue_high_watermark_ms(), 0.0);
}

TEST(LegacyStretchMacTest, BusyNeighborsStretchAirtime) {
  manet::ManetTopology topology = DenseField();
  MacModel::AirParams air;
  air.contention_per_busy_neighbor = 0.5;
  LegacyStretchMac mac(&topology, air);
  const int nbr = topology.neighbors(0).front();
  const int nbr_dst = topology.neighbors(nbr).front();
  // Occupy the neighbour's radio, then measure node 0's stretched frame.
  (void)mac.SendFrame(nbr, nbr_dst, QueryMsg(nbr, nbr_dst, 4000), 0.0);
  const int dst = topology.neighbors(0).front();
  const FrameResult fr = mac.SendFrame(0, dst, QueryMsg(0, dst, 250), 0.0);
  const double serialise = air.tx_overhead_ms + 250.0 / air.bandwidth_bytes_per_ms;
  EXPECT_GT(fr.done_ms, serialise);  // at least one busy neighbour stretched it
}

TEST(CsmaCaMacTest, DefersUntilBusyNeighborhoodClears) {
  manet::ManetTopology topology = DenseField();
  MacModel::AirParams air;
  MacOptions options;
  options.kind = MacOptions::Kind::kCsmaCa;
  options.collision_per_busy_neighbor = 0.0;  // isolate carrier sensing
  CsmaCaMac mac(&topology, air, options);
  const int nbr = topology.neighbors(0).front();
  const int nbr_dst = topology.neighbors(nbr).front();
  const FrameResult busy =
      mac.SendFrame(nbr, nbr_dst, QueryMsg(nbr, nbr_dst, 4000), 0.0);
  // Node 0 senses the busy neighbour and defers past its tail.
  const int dst = topology.neighbors(0).front();
  const FrameResult fr = mac.SendFrame(0, dst, QueryMsg(0, dst, 100), 0.0);
  EXPECT_TRUE(fr.delivered);
  EXPECT_GE(fr.done_ms, busy.done_ms);
  EXPECT_GE(mac.counters().deferrals, 1u);
  EXPECT_EQ(mac.counters().collisions, 0u);
}

TEST(CsmaCaMacTest, HiddenTerminalCollisionsRetryThenDrop) {
  manet::ManetTopology topology = HiddenTerminalChain();
  ASSERT_TRUE(topology.symmetric());
  ASSERT_EQ(topology.PathHops(0, 2), 2);  // A..C only via B
  MacModel::AirParams air;
  MacOptions options;
  options.kind = MacOptions::Kind::kCsmaCa;
  options.collision_per_busy_neighbor = 0.999;  // collide essentially always
  options.retry_limit = 3;
  CsmaCaMac mac(&topology, air, options);
  // C floods B's neighbourhood with a long frame A cannot carrier-sense...
  (void)mac.SendFrame(2, /*receiver=*/-1, QueryMsg(2, 1, 100000), 0.0);
  // ...so A's unicast to B collides at B, retries, and finally drops.
  const FrameResult fr = mac.SendFrame(0, 1, QueryMsg(0, 1, 100), 0.0);
  EXPECT_FALSE(fr.delivered);
  EXPECT_EQ(fr.attempts, options.retry_limit);
  EXPECT_EQ(mac.counters().collisions, 3u);
  EXPECT_EQ(mac.counters().retransmits, 2u);
  EXPECT_EQ(mac.counters().drops_retry_limit, 1u);
  // Broadcasts are fire-and-forget: no ack, no collision machinery.
  const FrameResult bc = mac.SendFrame(0, -1, QueryMsg(0, 1, 100), fr.done_ms);
  EXPECT_TRUE(bc.delivered);
  EXPECT_EQ(bc.attempts, 1);
}

TEST(CsmaCaMacTest, DeterministicGivenSeedAcrossInstances) {
  manet::ManetTopology topology_a = DenseField(12, 7);
  manet::ManetTopology topology_b = DenseField(12, 7);
  MacModel::AirParams air;
  MacOptions options;
  options.kind = MacOptions::Kind::kCsmaCa;
  options.collision_per_busy_neighbor = 0.3;
  CsmaCaMac a(&topology_a, air, options);
  CsmaCaMac b(&topology_b, air, options);
  // A bursty interleaved workload: identical frame-by-frame outcomes.
  for (int i = 0; i < 64; ++i) {
    const int src = i % 12;
    const std::vector<int>& out = topology_a.neighbors(src);
    const int dst = out[static_cast<size_t>(i) % out.size()];
    const sim::TimeMs at = static_cast<double>(i / 4) * 2.0;
    const FrameResult fa = a.SendFrame(src, dst, QueryMsg(src, dst, 400), at);
    const FrameResult fb = b.SendFrame(src, dst, QueryMsg(src, dst, 400), at);
    EXPECT_EQ(fa.done_ms, fb.done_ms) << i;
    EXPECT_EQ(fa.delivered, fb.delivered) << i;
    EXPECT_EQ(fa.attempts, fb.attempts) << i;
  }
  EXPECT_EQ(a.counters().frames_sent, b.counters().frames_sent);
  EXPECT_EQ(a.counters().deferrals, b.counters().deferrals);
  EXPECT_EQ(a.counters().collisions, b.counters().collisions);
  EXPECT_EQ(a.counters().retransmits, b.counters().retransmits);
  EXPECT_EQ(a.counters().drops_retry_limit, b.counters().drops_retry_limit);
  // A different MAC seed reshuffles the backoff draws.
  MacOptions reseeded = options;
  reseeded.seed ^= 0x5eed;
  manet::ManetTopology topology_c = DenseField(12, 7);
  CsmaCaMac c(&topology_c, air, reseeded);
  bool any_differs = false;
  for (int i = 0; i < 64 && !any_differs; ++i) {
    const int src = i % 12;
    const std::vector<int>& out = topology_a.neighbors(src);
    const int dst = out[static_cast<size_t>(i) % out.size()];
    const sim::TimeMs at = static_cast<double>(i / 4) * 2.0;
    const FrameResult fc = c.SendFrame(src, dst, QueryMsg(src, dst, 400), at);
    const FrameResult fa = a.SendFrame(src, dst, QueryMsg(src, dst, 400), at);
    (void)fa;  // `a` has extra history; compare c against a fresh twin instead
    manet::ManetTopology topology_d = DenseField(12, 7);
    CsmaCaMac d(&topology_d, air, options);
    const FrameResult fd = d.SendFrame(src, dst, QueryMsg(src, dst, 400), at);
    any_differs = fc.done_ms != fd.done_ms;
  }
  EXPECT_TRUE(any_differs);
}

TEST(CreateMacTest, FactorySelectsKindAndValidates) {
  manet::ManetTopology topology = DenseField();
  MacModel::AirParams air;
  MacOptions legacy;
  Result<std::unique_ptr<MacModel>> mac = CreateMac(legacy, air, &topology);
  ASSERT_TRUE(mac.ok());
  EXPECT_NE(dynamic_cast<LegacyStretchMac*>(mac->get()), nullptr);
  MacOptions csma;
  csma.kind = MacOptions::Kind::kCsmaCa;
  Result<std::unique_ptr<MacModel>> cs = CreateMac(csma, air, &topology);
  ASSERT_TRUE(cs.ok());
  EXPECT_NE(dynamic_cast<CsmaCaMac*>(cs->get()), nullptr);
  MacOptions bad = csma;
  bad.retry_limit = 0;
  EXPECT_FALSE(CreateMac(bad, air, &topology).ok());
}

}  // namespace
}  // namespace hyperm::channel
