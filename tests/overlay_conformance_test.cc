// Overlay interface conformance: the same behavioural contract, executed
// against every substrate (CAN, ring, BSP tree, gossip). Hyper-M's
// overlay-agnosticism claim rests on all of them honouring it:
//
//  1. a published cluster is discoverable by every range query whose sphere
//     intersects it (with unbounded flooding where a TTL exists),
//  2. matches are deduplicated by cluster id,
//  3. RemoveByOwner erases a peer's publications everywhere, others survive,
//  4. ClearStorage empties every node but keeps the topology queryable,
//  5. traffic is recorded for the operations that send messages.

#include <functional>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "can/can_overlay.h"
#include "common/rng.h"
#include "overlay/gossip_overlay.h"
#include "overlay/ring_overlay.h"
#include "overlay/tree_overlay.h"

namespace hyperm::overlay {
namespace {

struct Substrate {
  const char* name;
  size_t dim;  // key dimensionality the substrate is built with
  std::function<std::unique_ptr<Overlay>(sim::NetworkStats*, Rng&)> build;
};

Substrate MakeCanSubstrate() {
  return {"can", 2, [](sim::NetworkStats* stats, Rng& rng) -> std::unique_ptr<Overlay> {
            return std::move(can::CanOverlay::Build(2, 20, stats, rng).value());
          }};
}

Substrate MakeRingSubstrate() {
  return {"ring", 1, [](sim::NetworkStats* stats, Rng& rng) -> std::unique_ptr<Overlay> {
            return std::move(RingOverlay::Build(20, stats, rng).value());
          }};
}

Substrate MakeTreeSubstrate() {
  return {"tree", 2, [](sim::NetworkStats* stats, Rng& rng) -> std::unique_ptr<Overlay> {
            return std::move(TreeOverlay::Build(2, 20, stats, rng).value());
          }};
}

Substrate MakeGossipSubstrate() {
  return {"gossip", 2,
          [](sim::NetworkStats* stats, Rng& rng) -> std::unique_ptr<Overlay> {
            return std::move(
                GossipOverlay::Build(2, 20, 4, /*ttl=*/-1, stats, rng).value());
          }};
}

class OverlayConformance : public ::testing::TestWithParam<Substrate> {
 protected:
  PublishedCluster RandomCluster(uint64_t id, int owner, Rng& rng, size_t dim) {
    PublishedCluster c;
    c.sphere.center.resize(dim);
    for (double& x : c.sphere.center) x = rng.NextDouble();
    c.sphere.radius = rng.Uniform(0.0, 0.15);
    c.owner_peer = owner;
    c.items = 1 + static_cast<int>(id % 7);
    c.cluster_id = id;
    return c;
  }
};

TEST_P(OverlayConformance, IntersectingClustersAlwaysFoundOnce) {
  const Substrate& substrate = GetParam();
  sim::NetworkStats stats;
  Rng rng(101);
  auto overlay = substrate.build(&stats, rng);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 50; ++id) {
    PublishedCluster c = RandomCluster(id, static_cast<int>(id % 8), rng, substrate.dim);
    ASSERT_TRUE(overlay->Insert(c, 0).ok());
    all.push_back(c);
  }
  for (int trial = 0; trial < 40; ++trial) {
    geom::Sphere query;
    query.center.resize(substrate.dim);
    for (double& x : query.center) x = rng.NextDouble();
    query.radius = rng.Uniform(0.0, 0.3);
    Result<RangeQueryResult> result = overlay->RangeQuery(query, 0);
    ASSERT_TRUE(result.ok()) << substrate.name;
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) {
      EXPECT_TRUE(found.insert(c.cluster_id).second)
          << substrate.name << ": duplicate " << c.cluster_id;
    }
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u)
          << substrate.name << " trial " << trial << " cluster " << c.cluster_id;
    }
  }
}

TEST_P(OverlayConformance, RemoveByOwnerIsSurgical) {
  const Substrate& substrate = GetParam();
  sim::NetworkStats stats;
  Rng rng(102);
  auto overlay = substrate.build(&stats, rng);
  for (uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(
        overlay->Insert(RandomCluster(id, static_cast<int>(id % 2), rng, substrate.dim), 0)
            .ok());
  }
  EXPECT_GT(overlay->RemoveByOwner(1), 0) << substrate.name;
  EXPECT_EQ(overlay->RemoveByOwner(1), 0) << substrate.name;
  // A full-space query only surfaces peer 0's clusters now.
  geom::Sphere everything;
  everything.center.assign(substrate.dim, 0.5);
  everything.radius = 2.0;
  Result<RangeQueryResult> result = overlay->RangeQuery(everything, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches.size(), 10u) << substrate.name;
  for (const PublishedCluster& c : result->matches) EXPECT_EQ(c.owner_peer, 0);
}

TEST_P(OverlayConformance, ClearStorageKeepsTopologyUsable) {
  const Substrate& substrate = GetParam();
  sim::NetworkStats stats;
  Rng rng(103);
  auto overlay = substrate.build(&stats, rng);
  ASSERT_TRUE(overlay->Insert(RandomCluster(1, 0, rng, substrate.dim), 0).ok());
  overlay->ClearStorage();
  for (const NodeStorage& s : overlay->StorageDistribution()) {
    EXPECT_EQ(s.clusters, 0) << substrate.name;
  }
  // Still accepts publications and answers queries.
  PublishedCluster c = RandomCluster(2, 0, rng, substrate.dim);
  c.sphere.radius = 0.1;
  ASSERT_TRUE(overlay->Insert(c, 0).ok());
  Result<RangeQueryResult> result =
      overlay->RangeQuery(geom::Sphere{c.sphere.center, 0.05}, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches.size(), 1u) << substrate.name;
}

TEST_P(OverlayConformance, RejectsDimensionMismatchAndBadOrigin) {
  const Substrate& substrate = GetParam();
  sim::NetworkStats stats;
  Rng rng(104);
  auto overlay = substrate.build(&stats, rng);
  PublishedCluster wrong;
  wrong.sphere.center.assign(substrate.dim + 1, 0.5);
  EXPECT_FALSE(overlay->Insert(wrong, 0).ok()) << substrate.name;
  PublishedCluster fine = RandomCluster(1, 0, rng, substrate.dim);
  EXPECT_FALSE(overlay->Insert(fine, -1).ok()) << substrate.name;
  EXPECT_FALSE(overlay->Insert(fine, 999).ok()) << substrate.name;
  geom::Sphere query;
  query.center.assign(substrate.dim, 0.5);
  query.radius = 0.1;
  EXPECT_FALSE(overlay->RangeQuery(query, 999).ok()) << substrate.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSubstrates, OverlayConformance,
    ::testing::Values(MakeCanSubstrate(), MakeRingSubstrate(), MakeTreeSubstrate(),
                      MakeGossipSubstrate()),
    [](const ::testing::TestParamInfo<Substrate>& info) { return info.param.name; });

}  // namespace
}  // namespace hyperm::overlay
