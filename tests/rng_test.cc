#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace hyperm {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIndexStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextIndex(7), 7u);
  }
}

TEST(RngTest, NextIndexCoversAllValues) {
  Rng rng(17);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.NextIndex(5)];
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(41);
  const int n = 50000;
  for (double shape : {0.5, 1.0, 3.0}) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.05 * (1.0 + shape));
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> x = rng.Dirichlet(16, 0.4);
    double total = std::accumulate(x.begin(), x.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double v : x) EXPECT_GE(v, 0.0);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // Child diverges from parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace hyperm
