// CAN node-departure (zone takeover) tests: the partition, neighbour and
// storage invariants must survive arbitrary join/leave churn.

#include <set>

#include <gtest/gtest.h>

#include "can/can_overlay.h"
#include "common/rng.h"

namespace hyperm::can {
namespace {

using overlay::NodeId;
using overlay::PublishedCluster;

std::unique_ptr<CanOverlay> MakeCan(size_t dim, int nodes, sim::NetworkStats* stats,
                                    uint64_t seed = 7) {
  Rng rng(seed);
  auto result = CanOverlay::Build(dim, nodes, stats, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

// Active zones must tile the cube exactly.
void ExpectConsistentPartition(const CanOverlay& can) {
  double volume = 0.0;
  for (NodeId n = 0; n < can.num_nodes(); ++n) {
    if (can.active(n)) volume += can.zone(n).Volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    Vector key(can.dim());
    for (double& x : key) x = rng.NextDouble();
    int owners = 0;
    for (NodeId n = 0; n < can.num_nodes(); ++n) {
      if (can.active(n) && can.zone(n).ContainsHalfOpen(key)) ++owners;
    }
    EXPECT_EQ(owners, 1);
  }
  // Neighbour symmetry among active nodes only.
  for (NodeId a = 0; a < can.num_nodes(); ++a) {
    if (!can.active(a)) {
      EXPECT_TRUE(can.neighbors(a).empty());
      continue;
    }
    for (NodeId b : can.neighbors(a)) {
      EXPECT_TRUE(can.active(b));
      const auto& back = can.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST(CanLeaveTest, RejectsInvalidDepartures) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 4, &stats);
  EXPECT_FALSE(can->Leave(99).ok());
  ASSERT_TRUE(can->Leave(2).ok());
  EXPECT_FALSE(can->Leave(2).ok());  // already gone
}

TEST(CanLeaveTest, LastNodeCannotLeave) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 1, &stats);
  EXPECT_FALSE(can->Leave(0).ok());
}

TEST(CanLeaveTest, MergeWithSiblingNeighbor) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 2, &stats);
  // With two nodes the zones are always siblings: the survivor owns it all.
  ASSERT_TRUE(can->Leave(1).ok());
  EXPECT_EQ(can->num_active_nodes(), 1);
  EXPECT_TRUE(can->active(0));
  EXPECT_NEAR(can->zone(0).Volume(), 1.0, 1e-12);
}

TEST(CanLeaveTest, PartitionSurvivesEveryDeparture) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 24, &stats);
  Rng rng(5);
  // Remove nodes one by one in random order down to a single survivor.
  std::vector<NodeId> order;
  for (NodeId n = 0; n < can->num_nodes(); ++n) order.push_back(n);
  rng.Shuffle(order);
  order.pop_back();  // keep one
  for (NodeId n : order) {
    ASSERT_TRUE(can->Leave(n).ok()) << "leaving node " << n;
    ExpectConsistentPartition(*can);
  }
  EXPECT_EQ(can->num_active_nodes(), 1);
}

TEST(CanLeaveTest, RoutingStillReachesOwnersAfterChurn) {
  sim::NetworkStats stats;
  auto can = MakeCan(3, 32, &stats);
  Rng rng(6);
  for (int i = 0; i < 12; ++i) {
    NodeId victim = static_cast<NodeId>(rng.NextIndex(32));
    while (!can->active(victim)) victim = static_cast<NodeId>(rng.NextIndex(32));
    ASSERT_TRUE(can->Leave(victim).ok());
  }
  for (int trial = 0; trial < 50; ++trial) {
    Vector key(3);
    for (double& x : key) x = rng.NextDouble();
    NodeId origin = static_cast<NodeId>(rng.NextIndex(32));
    while (!can->active(origin)) origin = static_cast<NodeId>(rng.NextIndex(32));
    Result<RouteResult> route = can->Route(key, origin, sim::TrafficClass::kQuery, 32);
    ASSERT_TRUE(route.ok()) << route.status().ToString();
    EXPECT_EQ(route->destination, can->OwnerOf(key));
  }
}

TEST(CanLeaveTest, StoredClustersSurviveDeparture) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 16, &stats);
  Rng rng(8);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 30; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.12)};
    c.owner_peer = static_cast<int>(id % 5);
    c.items = 2;
    c.cluster_id = id;
    ASSERT_TRUE(can->Insert(c, 0).ok());
    all.push_back(c);
  }
  // Half the nodes leave.
  for (int i = 0; i < 8; ++i) {
    NodeId victim = static_cast<NodeId>(rng.NextIndex(16));
    while (!can->active(victim)) victim = static_cast<NodeId>(rng.NextIndex(16));
    ASSERT_TRUE(can->Leave(victim).ok());
  }
  // Every cluster is still fully discoverable by range queries.
  NodeId origin = 0;
  while (!can->active(origin)) ++origin;
  for (int trial = 0; trial < 40; ++trial) {
    geom::Sphere query{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.0, 0.25)};
    Result<overlay::RangeQueryResult> result = can->RangeQuery(query, origin);
    ASSERT_TRUE(result.ok());
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) found.insert(c.cluster_id);
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u)
          << "cluster " << c.cluster_id << " trial " << trial;
    }
  }
}

TEST(CanLeaveTest, JoinAfterLeaveWorks) {
  sim::NetworkStats stats;
  Rng rng(9);
  auto can = CanOverlay::Build(2, 8, &stats, rng).value();
  ASSERT_TRUE(can->Leave(3).ok());
  ASSERT_TRUE(can->Leave(5).ok());
  // The overlay keeps functioning: joins via Build are not exposed, but
  // inserts and queries must keep their guarantees.
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.4, 0.6}, 0.2};
  c.items = 3;
  c.cluster_id = 77;
  ASSERT_TRUE(can->Insert(c, 0).ok());
  Result<overlay::RangeQueryResult> result =
      can->RangeQuery(geom::Sphere{{0.45, 0.55}, 0.05}, 0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_EQ(result->matches[0].cluster_id, 77u);
}

TEST(CanLeaveTest, MaintenanceTrafficRecorded) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 16, &stats);
  const uint64_t before = stats.hops(sim::TrafficClass::kJoin);
  ASSERT_TRUE(can->Leave(7).ok());
  EXPECT_GT(stats.hops(sim::TrafficClass::kJoin), before);
}

TEST(CanJoinTest, AddNodeGrowsTheNetworkConsistently) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 4, &stats);
  Rng rng(12);
  for (int i = 0; i < 12; ++i) {
    Result<NodeId> fresh = can->AddNode(rng);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_TRUE(can->active(*fresh));
  }
  EXPECT_EQ(can->num_active_nodes(), 16);
  ExpectConsistentPartition(*can);
}

TEST(CanJoinTest, StoredClustersSurviveJoins) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 4, &stats);
  Rng rng(13);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 20; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.2)};
    c.items = 1;
    c.cluster_id = id;
    ASSERT_TRUE(can->Insert(c, 0).ok());
    all.push_back(c);
  }
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(can->AddNode(rng).ok());
  for (int trial = 0; trial < 30; ++trial) {
    geom::Sphere query{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.0, 0.3)};
    Result<overlay::RangeQueryResult> result = can->RangeQuery(query, 0);
    ASSERT_TRUE(result.ok());
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) found.insert(c.cluster_id);
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u);
    }
  }
}

TEST(CanJoinTest, InterleavedJoinLeaveChurn) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 10, &stats, 77);
  Rng rng(14);
  for (int round = 0; round < 40; ++round) {
    if (rng.Bernoulli(0.5) && can->num_active_nodes() > 2) {
      NodeId victim =
          static_cast<NodeId>(rng.NextIndex(static_cast<uint64_t>(can->num_nodes())));
      while (!can->active(victim)) {
        victim = static_cast<NodeId>(
            rng.NextIndex(static_cast<uint64_t>(can->num_nodes())));
      }
      ASSERT_TRUE(can->Leave(victim).ok());
    } else {
      ASSERT_TRUE(can->AddNode(rng).ok());
    }
    if (round % 8 == 0) ExpectConsistentPartition(*can);
  }
  ExpectConsistentPartition(*can);
}

// Heavier randomized churn sweep across dimensions.
class CanChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(CanChurnSweep, InvariantsHoldUnderRandomChurn) {
  const int dim = GetParam();
  sim::NetworkStats stats;
  auto can = MakeCan(static_cast<size_t>(dim), 20, &stats,
                     static_cast<uint64_t>(dim) + 100);
  Rng rng(static_cast<uint64_t>(dim) * 31);
  int departures = 0;
  while (can->num_active_nodes() > 3) {
    NodeId victim = static_cast<NodeId>(rng.NextIndex(20));
    if (!can->active(victim)) continue;
    ASSERT_TRUE(can->Leave(victim).ok());
    ++departures;
    if (departures % 4 == 0) ExpectConsistentPartition(*can);
  }
  ExpectConsistentPartition(*can);
}

INSTANTIATE_TEST_SUITE_P(Dims, CanChurnSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace hyperm::can
