#include "hyperm/network.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/histogram_generator.h"
#include "data/markov_generator.h"
#include "hyperm/baseline.h"
#include "hyperm/flat_index.h"
#include "hyperm/eval.h"
#include "obs/trace.h"

namespace hyperm::core {
namespace {

struct TestBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

TestBed MakeTestBed(const HyperMOptions& options = {}, uint64_t seed = 1,
                    int items = 800, int dim = 64, int peers = 16) {
  Rng rng(seed);
  data::MarkovOptions data_options;
  data_options.count = items;
  data_options.dim = dim;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  TestBed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = peers;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

TEST(NetworkBuildTest, RejectsBadInput) {
  Rng rng(1);
  data::Dataset empty;
  EXPECT_FALSE(HyperMNetwork::Build(empty, {{0}}, {}, rng).ok());

  data::Dataset odd;
  odd.items.push_back(Vector(6, 1.0));  // not a power of two
  EXPECT_FALSE(HyperMNetwork::Build(odd, {{0}}, {}, rng).ok());

  data::Dataset good;
  good.items.push_back(Vector(8, 1.0));
  EXPECT_FALSE(HyperMNetwork::Build(good, {}, {}, rng).ok());

  HyperMOptions too_many_layers;
  too_many_layers.num_layers = 10;  // 8-dim data has only log2(8)+1 = 4 levels
  EXPECT_FALSE(HyperMNetwork::Build(good, {{0}}, too_many_layers, rng).ok());

  EXPECT_FALSE(HyperMNetwork::Build(good, {{5}}, {}, rng).ok());  // bad index
}

TEST(NetworkBuildTest, TopologyMatchesConfiguration) {
  TestBed bed = MakeTestBed();
  EXPECT_EQ(bed.network->num_peers(), 16);
  EXPECT_EQ(bed.network->num_layers(), 4);
  EXPECT_EQ(bed.network->data_dim(), 64u);
  EXPECT_EQ(bed.network->total_items(), 800);
  // Layer dims: A=1, D0=1, D1=2, D2=4.
  EXPECT_EQ(bed.network->overlay(0).dim(), 1u);
  EXPECT_EQ(bed.network->overlay(1).dim(), 1u);
  EXPECT_EQ(bed.network->overlay(2).dim(), 2u);
  EXPECT_EQ(bed.network->overlay(3).dim(), 4u);
  EXPECT_EQ(bed.network->level(0).name(), "A");
  EXPECT_EQ(bed.network->level(3).name(), "D2");
}

TEST(NetworkBuildTest, PublishesAtMostKpClustersPerPeerPerLayer) {
  HyperMOptions options;
  options.clusters_per_peer = 5;
  TestBed bed = MakeTestBed(options);
  for (int layer = 0; layer < bed.network->num_layers(); ++layer) {
    // A whole-cube range query surfaces every published cluster exactly once
    // (replicas are deduplicated by id).
    const size_t dim = bed.network->overlay(layer).dim();
    geom::Sphere everything{Vector(dim, 0.5), 2.0 * std::sqrt(static_cast<double>(dim))};
    Result<overlay::RangeQueryResult> all =
        const_cast<overlay::Overlay&>(bed.network->overlay(layer))
            .RangeQuery(everything, 0);
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    std::vector<int> per_peer(16, 0);
    int items_summarized = 0;
    for (const overlay::PublishedCluster& c : all->matches) {
      ASSERT_GE(c.owner_peer, 0);
      ASSERT_LT(c.owner_peer, 16);
      ++per_peer[static_cast<size_t>(c.owner_peer)];
      items_summarized += c.items;
    }
    for (int count : per_peer) {
      EXPECT_GT(count, 0);
      EXPECT_LE(count, 5);
    }
    // Every peer's items are covered by its published summaries.
    EXPECT_EQ(items_summarized, 800);
  }
}

TEST(NetworkBuildTest, InsertionTrafficRecorded) {
  TestBed bed = MakeTestBed();
  const sim::NetworkStats& stats = bed.network->stats();
  EXPECT_GT(stats.hops(sim::TrafficClass::kJoin), 0u);
  EXPECT_GT(stats.hops(sim::TrafficClass::kInsert) +
                stats.hops(sim::TrafficClass::kReplicate),
            0u);
  EXPECT_GT(stats.total_energy_millijoules(), 0.0);
}

TEST(NetworkBuildTest, SummarizationBeatsPerItemInsertion) {
  // The headline claim: publication cost is per-cluster, not per-item, so
  // once items/peer exceeds the published cluster count the per-item CAN
  // baseline loses. 2000 items over 10 peers (200 each) vs 10 clusters * 4
  // layers per peer is the paper's regime in miniature.
  TestBed bed = MakeTestBed({}, /*seed=*/21, /*items=*/2000, /*dim=*/64,
                            /*peers=*/10);
  const uint64_t hyperm_hops =
      bed.network->stats().hops(sim::TrafficClass::kInsert) +
      bed.network->stats().hops(sim::TrafficClass::kReplicate);

  Rng rng(21);
  Result<std::unique_ptr<CanItemBaseline>> baseline =
      CanItemBaseline::Build(bed.dataset, bed.assignment, {}, rng);
  ASSERT_TRUE(baseline.ok());
  const uint64_t baseline_hops =
      (*baseline)->stats().hops(sim::TrafficClass::kInsert);
  EXPECT_LT(hyperm_hops, baseline_hops);
}

TEST(NetworkQueryTest, RangeQueryFindsExactMatches) {
  TestBed bed = MakeTestBed();
  const FlatIndex oracle(bed.dataset);
  // Query centered at an existing item with a moderate radius.
  const Vector& query = bed.dataset.items[17];
  const double eps = oracle.KnnRadius(query, 10);
  RangeQueryInfo info;
  Result<std::vector<ItemId>> result =
      bed.network->RangeQuery(query, eps, /*querying_peer=*/0,
                              /*max_peers_contacted=*/-1, &info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<ItemId> truth = oracle.RangeSearch(query, eps);
  const PrecisionRecall pr = Evaluate(*result, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);  // only true range members returned
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);     // contacting all candidates: no misses
  EXPECT_GT(info.candidate_peers, 0);
  EXPECT_EQ(info.peers_contacted, info.candidate_peers);
}

TEST(NetworkQueryTest, ContactBudgetTradesRecall) {
  TestBed bed = MakeTestBed();
  const FlatIndex oracle(bed.dataset);
  const Vector& query = bed.dataset.items[3];
  const double eps = oracle.KnnRadius(query, 40);
  const std::vector<ItemId> truth = oracle.RangeSearch(query, eps);

  Result<std::vector<ItemId>> all =
      bed.network->RangeQuery(query, eps, 0, -1);
  Result<std::vector<ItemId>> one =
      bed.network->RangeQuery(query, eps, 0, 1);
  ASSERT_TRUE(all.ok() && one.ok());
  EXPECT_GE(Evaluate(*all, truth).recall, Evaluate(*one, truth).recall);
  EXPECT_DOUBLE_EQ(Evaluate(*one, truth).precision, 1.0);
}

TEST(NetworkQueryTest, ScoresAreSortedAndPositive) {
  TestBed bed = MakeTestBed();
  const Vector& query = bed.dataset.items[50];
  Result<std::vector<PeerScore>> scores = bed.network->ScorePeers(query, 0.5, 0);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < scores->size(); ++i) {
    EXPECT_GT((*scores)[i].score, 0.0);
    if (i > 0) {
      EXPECT_GE((*scores)[i - 1].score, (*scores)[i].score);
    }
  }
}

TEST(NetworkQueryTest, RejectsBadQueries) {
  TestBed bed = MakeTestBed();
  EXPECT_FALSE(bed.network->RangeQuery(Vector(3, 0.0), 1.0, 0).ok());
  EXPECT_FALSE(bed.network->RangeQuery(bed.dataset.items[0], -1.0, 0).ok());
  EXPECT_FALSE(bed.network->RangeQuery(bed.dataset.items[0], 1.0, -1).ok());
  EXPECT_FALSE(bed.network->RangeQuery(bed.dataset.items[0], 1.0, 99).ok());
  KnnOptions knn;
  EXPECT_FALSE(bed.network->KnnQuery(bed.dataset.items[0], 0, knn, 0).ok());
  knn.c = 0.0;
  EXPECT_FALSE(bed.network->KnnQuery(bed.dataset.items[0], 5, knn, 0).ok());
}

TEST(NetworkQueryTest, KnnReturnsSortedResultsCoveringK) {
  TestBed bed = MakeTestBed();
  const FlatIndex oracle(bed.dataset);
  const Vector& query = bed.dataset.items[99];
  KnnOptions options;
  options.c = 1.5;
  KnnQueryInfo info;
  Result<std::vector<ItemId>> result = bed.network->KnnQuery(query, 10, options, 0, &info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->empty());
  // Sorted by true distance.
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE(vec::Distance(bed.dataset.items[static_cast<size_t>((*result)[i - 1])], query),
              vec::Distance(bed.dataset.items[static_cast<size_t>((*result)[i])], query) +
                  1e-12);
  }
  EXPECT_EQ(info.level_radii.size(), 4u);
  EXPECT_GT(info.items_requested, 0);
  // Self-query: the item itself must be the first result.
  EXPECT_EQ((*result)[0], 99);
}

TEST(NetworkQueryTest, KnnRecallIsReasonable) {
  TestBed bed = MakeTestBed({}, /*seed=*/2);
  const FlatIndex oracle(bed.dataset);
  std::vector<PrecisionRecall> prs;
  KnnOptions options;
  options.c = 1.5;
  for (int q = 0; q < 20; ++q) {
    const Vector& query = bed.dataset.items[static_cast<size_t>(q * 37 % 800)];
    const int k = 10;
    Result<std::vector<ItemId>> result = bed.network->KnnQuery(query, k, options, 0);
    ASSERT_TRUE(result.ok());
    prs.push_back(Evaluate(*result, oracle.Knn(query, k)));
  }
  const EffectivenessSummary s = Summarize(prs);
  EXPECT_GT(s.mean_recall, 0.5);  // the paper balances P/R above 50%
}

TEST(NetworkChurnTest, PostCreationInsertsDegradeRecallGracefully) {
  TestBed bed = MakeTestBed({}, /*seed=*/3);
  // New items resembling existing ones, added without republication.
  Rng rng(42);
  data::MarkovOptions new_options;
  new_options.count = 200;
  new_options.dim = 64;
  new_options.num_families = 8;
  Result<data::Dataset> extra = data::GenerateMarkov(new_options, rng);
  ASSERT_TRUE(extra.ok());

  data::Dataset combined = bed.dataset;
  for (size_t i = 0; i < extra->items.size(); ++i) {
    const ItemId id = static_cast<ItemId>(combined.items.size());
    combined.items.push_back(extra->items[i]);
    bed.network->AddItemWithoutRepublish(static_cast<int>(i % 16), id,
                                         extra->items[i]);
  }
  EXPECT_EQ(bed.network->total_items(), 1000);

  const FlatIndex oracle(combined);
  double recall_sum = 0.0;
  int queries = 0;
  for (int q = 0; q < 10; ++q) {
    const Vector& query = combined.items[static_cast<size_t>(800 + q * 13)];
    const double eps = oracle.KnnRadius(query, 20);
    Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
    ASSERT_TRUE(result.ok());
    recall_sum += Evaluate(*result, oracle.RangeSearch(query, eps)).recall;
    ++queries;
  }
  const double recall = recall_sum / queries;
  // Recall drops below the no-churn 100% but stays usable (paper: <=33% loss
  // at 45% new items; here 25% new items).
  EXPECT_GT(recall, 0.4);
  EXPECT_LE(recall, 1.0);
}

TEST(NetworkQueryTest, PointQueryFindsExactItem) {
  TestBed bed = MakeTestBed({}, /*seed=*/31);
  for (ItemId id : {5, 123, 700}) {
    Result<std::vector<ItemId>> result =
        bed.network->PointQuery(bed.dataset.items[static_cast<size_t>(id)], 0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(std::find(result->begin(), result->end(), id), result->end())
        << "item " << id << " not found by point query";
  }
}

TEST(NetworkQueryTest, PointQueryMissesAbsentPoint) {
  TestBed bed = MakeTestBed({}, /*seed=*/32);
  Vector absent(64, 12345.678);  // far outside the data range
  Result<std::vector<ItemId>> result = bed.network->PointQuery(absent, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(NetworkChurnTest, RepublishRestoresTheGuarantee) {
  TestBed bed = MakeTestBed({}, /*seed=*/33);
  // Add fresh items without republication.
  Rng rng(77);
  data::MarkovOptions new_options;
  new_options.count = 300;
  new_options.dim = 64;
  new_options.num_families = 8;
  Result<data::Dataset> extra = data::GenerateMarkov(new_options, rng);
  ASSERT_TRUE(extra.ok());
  data::Dataset combined = bed.dataset;
  for (size_t i = 0; i < extra->items.size(); ++i) {
    const ItemId id = static_cast<ItemId>(combined.items.size());
    combined.items.push_back(extra->items[i]);
    bed.network->AddItemWithoutRepublish(static_cast<int>(i % 16), id,
                                         extra->items[i]);
  }
  // Repair: every peer republishes its summaries.
  Rng republish_rng(99);
  for (int p = 0; p < bed.network->num_peers(); ++p) {
    ASSERT_TRUE(bed.network->RepublishPeer(p, republish_rng).ok());
  }
  // The no-false-dismissal guarantee holds again over the full corpus.
  const FlatIndex oracle(combined);
  for (int q = 0; q < 8; ++q) {
    const size_t index = (static_cast<size_t>(q) * 131 + 801) % combined.items.size();
    const Vector& query = combined.items[index];
    const double eps = oracle.KnnRadius(query, 15);
    Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
    ASSERT_TRUE(result.ok());
    const PrecisionRecall pr = Evaluate(*result, oracle.RangeSearch(query, eps));
    EXPECT_DOUBLE_EQ(pr.recall, 1.0) << "query " << index;
  }
}

TEST(NetworkChurnTest, RepublishIsIdempotentOnCleanPeers) {
  TestBed bed = MakeTestBed({}, /*seed=*/34);
  const FlatIndex oracle(bed.dataset);
  Rng rng(5);
  ASSERT_TRUE(bed.network->RepublishPeer(3, rng).ok());
  ASSERT_TRUE(bed.network->RepublishPeer(3, rng).ok());  // twice is fine
  const Vector& query = bed.dataset.items[10];
  const double eps = oracle.KnnRadius(query, 10);
  Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(Evaluate(*result, oracle.RangeSearch(query, eps)).recall, 1.0);
}

TEST(NetworkConfigTest, RingOverlayHybridWorks) {
  HyperMOptions options;
  options.overlay_kind = OverlayKind::kRingAndCan;
  TestBed bed = MakeTestBed(options, /*seed=*/4);
  const FlatIndex oracle(bed.dataset);
  const Vector& query = bed.dataset.items[11];
  const double eps = oracle.KnnRadius(query, 10);
  Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(Evaluate(*result, oracle.RangeSearch(query, eps)).recall, 1.0);
}

TEST(NetworkConfigTest, TreeOverlayWorks) {
  HyperMOptions options;
  options.overlay_kind = OverlayKind::kTree;
  TestBed bed = MakeTestBed(options, /*seed=*/14);
  const FlatIndex oracle(bed.dataset);
  const Vector& query = bed.dataset.items[33];
  const double eps = oracle.KnnRadius(query, 10);
  Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(Evaluate(*result, oracle.RangeSearch(query, eps)).recall, 1.0);
}

TEST(NetworkConfigTest, OrthonormalWaveletsPreserveTheGuarantee) {
  for (wavelet::WaveletKind kind : {wavelet::WaveletKind::kHaarOrthonormal,
                                    wavelet::WaveletKind::kDaubechies4}) {
    HyperMOptions options;
    options.wavelet_kind = kind;
    TestBed bed = MakeTestBed(options, /*seed=*/15);
    const FlatIndex oracle(bed.dataset);
    const Vector& query = bed.dataset.items[44];
    const double eps = oracle.KnnRadius(query, 10);
    Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(Evaluate(*result, oracle.RangeSearch(query, eps)).recall, 1.0)
        << wavelet::WaveletKindName(kind);
  }
}

TEST(NetworkConfigTest, SumPolicyStillFindsResults) {
  HyperMOptions options;
  options.score_policy = ScorePolicy::kSum;
  TestBed bed = MakeTestBed(options, /*seed=*/5);
  const FlatIndex oracle(bed.dataset);
  const Vector& query = bed.dataset.items[22];
  const double eps = oracle.KnnRadius(query, 10);
  Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(Evaluate(*result, oracle.RangeSearch(query, eps)).recall, 1.0);
}

TEST(NetworkConfigTest, SingleLayerNetworkWorks) {
  HyperMOptions options;
  options.num_layers = 1;
  TestBed bed = MakeTestBed(options, /*seed=*/6);
  EXPECT_EQ(bed.network->num_layers(), 1);
  const FlatIndex oracle(bed.dataset);
  const Vector& query = bed.dataset.items[40];
  const double eps = oracle.KnnRadius(query, 5);
  Result<std::vector<ItemId>> result = bed.network->RangeQuery(query, eps, 0, -1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(Evaluate(*result, oracle.RangeSearch(query, eps)).recall, 1.0);
}

#ifndef HYPERM_OBS_DISABLED
// Finds the first recorded span with the given name, or nullptr.
const obs::SpanRecord* FindSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  for (const obs::SpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(NetworkObsTest, BuildAndQueriesEmitNestedSpans) {
  obs::Tracer::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
  TestBed bed = MakeTestBed();
  const Vector& query = bed.dataset.items[10];
  ASSERT_TRUE(bed.network->RangeQuery(query, 0.5, 0, -1).ok());
  KnnOptions knn_options;
  ASSERT_TRUE(bed.network->KnnQuery(query, 5, knn_options, 1).ok());

  const std::vector<obs::SpanRecord>& spans = obs::Tracer::Global().spans();
  const obs::SpanRecord* build = FindSpan(spans, "build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->parent, -1);
  for (const char* phase : {"build/decompose", "build/overlays", "build/publish"}) {
    const obs::SpanRecord* child = FindSpan(spans, phase);
    ASSERT_NE(child, nullptr) << phase;
    EXPECT_EQ(child->parent, build->id) << phase;
    EXPECT_GE(child->duration_us, 0.0) << phase;
  }

  // Range query: query/range > query/score > query/layer<N> for every layer,
  // plus the retrieval phase.
  const obs::SpanRecord* range = FindSpan(spans, "query/range");
  ASSERT_NE(range, nullptr);
  const obs::SpanRecord* score = FindSpan(spans, "query/score");
  ASSERT_NE(score, nullptr);
  EXPECT_EQ(score->parent, range->id);
  for (int layer = 0; layer < bed.network->num_layers(); ++layer) {
    const std::string name = "query/layer" + std::to_string(layer);
    const obs::SpanRecord* layer_span = FindSpan(spans, name);
    ASSERT_NE(layer_span, nullptr) << name;
    EXPECT_EQ(layer_span->parent, score->id) << name;
  }
  const obs::SpanRecord* retrieve = FindSpan(spans, "query/retrieve");
  ASSERT_NE(retrieve, nullptr);
  EXPECT_EQ(retrieve->parent, range->id);

  // k-NN query: per-layer probe spans nest directly under query/knn.
  const obs::SpanRecord* knn = FindSpan(spans, "query/knn");
  ASSERT_NE(knn, nullptr);
  bool knn_layer_found = false;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent == knn->id && s.name.rfind("query/layer", 0) == 0) {
      knn_layer_found = true;
    }
  }
  EXPECT_TRUE(knn_layer_found);
  obs::Tracer::Global().Reset();
}

TEST(NetworkObsTest, QueryAccountingReachesRegistryAndStats) {
  obs::Tracer::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
  TestBed bed = MakeTestBed();
  // No info struct passed: the network must still fold the per-query
  // accounting into the registry (the structs are thin views).
  ASSERT_TRUE(bed.network->RangeQuery(bed.dataset.items[3], 0.5, 0, -1).ok());
  EXPECT_EQ(bed.network->stats().queries_served(), 1u);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("query.range_count"), 1u);
  EXPECT_EQ(snap.histograms.at("query.candidate_peers").count, 1u);
  EXPECT_EQ(snap.histograms.at("query.peers_contacted").count, 1u);
  EXPECT_GT(snap.counters.at("build.clusters_published"), 0u);
  obs::Tracer::Global().Reset();
}
#endif  // HYPERM_OBS_DISABLED

}  // namespace
}  // namespace hyperm::core
