#include "can/can_overlay.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::can {
namespace {

using overlay::NodeId;
using overlay::PublishedCluster;

std::unique_ptr<CanOverlay> MakeCan(size_t dim, int nodes, sim::NetworkStats* stats,
                                    uint64_t seed = 7) {
  Rng rng(seed);
  Result<std::unique_ptr<CanOverlay>> result = CanOverlay::Build(dim, nodes, stats, rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(CanBuildTest, RejectsBadArguments) {
  sim::NetworkStats stats;
  Rng rng(1);
  EXPECT_FALSE(CanOverlay::Build(0, 5, &stats, rng).ok());
  EXPECT_FALSE(CanOverlay::Build(2, 0, &stats, rng).ok());
}

TEST(CanBuildTest, SingleNodeOwnsWholeCube) {
  sim::NetworkStats stats;
  auto can = MakeCan(3, 1, &stats);
  EXPECT_EQ(can->num_nodes(), 1);
  EXPECT_EQ(can->zone(0).lo, (Vector{0.0, 0.0, 0.0}));
  EXPECT_EQ(can->zone(0).hi, (Vector{1.0, 1.0, 1.0}));
  EXPECT_TRUE(can->neighbors(0).empty());
}

TEST(CanBuildTest, JoinTrafficRecorded) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 20, &stats);
  EXPECT_GT(stats.hops(sim::TrafficClass::kJoin), 0u);
}

// Zones must exactly tile the unit cube: volumes sum to 1 and every random
// key has exactly one owner.
class CanPartition : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CanPartition, ZonesTileTheCube) {
  const auto [dim, nodes] = GetParam();
  sim::NetworkStats stats;
  auto can = MakeCan(static_cast<size_t>(dim), nodes, &stats);
  double volume = 0.0;
  for (NodeId n = 0; n < can->num_nodes(); ++n) volume += can->zone(n).Volume();
  EXPECT_NEAR(volume, 1.0, 1e-9);

  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Vector key(static_cast<size_t>(dim));
    for (double& x : key) x = rng.NextDouble();
    int owners = 0;
    for (NodeId n = 0; n < can->num_nodes(); ++n) {
      if (can->zone(n).ContainsHalfOpen(key)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "trial " << trial;
  }
}

TEST_P(CanPartition, NeighborListsAreSymmetricAndCorrect) {
  const auto [dim, nodes] = GetParam();
  sim::NetworkStats stats;
  auto can = MakeCan(static_cast<size_t>(dim), nodes, &stats);
  for (NodeId a = 0; a < can->num_nodes(); ++a) {
    for (NodeId b : can->neighbors(a)) {
      const auto& back = can->neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << "neighbor symmetry broken between " << a << " and " << b;
    }
    // No duplicates, no self-loop.
    std::set<NodeId> unique(can->neighbors(a).begin(), can->neighbors(a).end());
    EXPECT_EQ(unique.size(), can->neighbors(a).size());
    EXPECT_EQ(unique.count(a), 0u);
  }
}

TEST_P(CanPartition, GreedyRoutingReachesOracleOwner) {
  const auto [dim, nodes] = GetParam();
  sim::NetworkStats stats;
  auto can = MakeCan(static_cast<size_t>(dim), nodes, &stats);
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    Vector key(static_cast<size_t>(dim));
    for (double& x : key) x = rng.NextDouble();
    const NodeId origin = static_cast<NodeId>(rng.NextIndex(
        static_cast<uint64_t>(can->num_nodes())));
    Result<RouteResult> route = can->Route(key, origin, sim::TrafficClass::kQuery, 32);
    ASSERT_TRUE(route.ok()) << route.status().ToString();
    EXPECT_EQ(route->destination, can->OwnerOf(key));
    EXPECT_LE(route->hops, can->num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, CanPartition,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(2, 17, 64)));

TEST(CanInsertTest, PointStoredAtOwner) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 16, &stats);
  PublishedCluster cluster;
  cluster.sphere = geom::Sphere{{0.3, 0.7}, 0.0};
  cluster.owner_peer = 5;
  cluster.items = 3;
  cluster.cluster_id = 42;
  Result<overlay::InsertReceipt> receipt = can->Insert(cluster, 0);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->replicas, 0);
  const NodeId owner = can->OwnerOf(cluster.sphere.center);
  ASSERT_EQ(can->stored(owner).size(), 1u);
  EXPECT_EQ(can->stored(owner)[0].cluster_id, 42u);
}

TEST(CanInsertTest, SphereReplicatedToEveryOverlappingZone) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 32, &stats);
  PublishedCluster cluster;
  cluster.sphere = geom::Sphere{{0.5, 0.5}, 0.25};
  cluster.owner_peer = 1;
  cluster.items = 10;
  cluster.cluster_id = 7;
  Result<overlay::InsertReceipt> receipt = can->Insert(cluster, 0);
  ASSERT_TRUE(receipt.ok());
  int holders = 0;
  for (NodeId n = 0; n < can->num_nodes(); ++n) {
    const bool overlaps = can->zone(n).IntersectsSphere(cluster.sphere);
    const bool holds = !can->stored(n).empty();
    EXPECT_EQ(overlaps, holds) << "node " << n;
    if (holds) ++holders;
  }
  EXPECT_EQ(receipt->replicas, holders - 1);
  EXPECT_GT(holders, 1);  // a radius-0.25 sphere must straddle zones here
}

TEST(CanInsertTest, RejectsDimensionMismatch) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 4, &stats);
  PublishedCluster cluster;
  cluster.sphere = geom::Sphere{{0.5}, 0.1};
  EXPECT_FALSE(can->Insert(cluster, 0).ok());
}

TEST(CanQueryTest, FindsEveryIntersectingClusterExactlyOnce) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 24, &stats);
  Rng rng(5);
  std::vector<PublishedCluster> all;
  for (uint64_t id = 1; id <= 40; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.15)};
    c.owner_peer = static_cast<int>(id % 10);
    c.items = 1 + static_cast<int>(id % 5);
    c.cluster_id = id;
    ASSERT_TRUE(can->Insert(c, 0).ok());
    all.push_back(c);
  }
  for (int trial = 0; trial < 50; ++trial) {
    geom::Sphere query{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.0, 0.3)};
    Result<overlay::RangeQueryResult> result = can->RangeQuery(query, 0);
    ASSERT_TRUE(result.ok());
    std::set<uint64_t> found;
    for (const PublishedCluster& c : result->matches) {
      EXPECT_TRUE(found.insert(c.cluster_id).second) << "duplicate id " << c.cluster_id;
    }
    for (const PublishedCluster& c : all) {
      EXPECT_EQ(found.count(c.cluster_id), c.sphere.Intersects(query) ? 1u : 0u)
          << "cluster " << c.cluster_id << " trial " << trial;
    }
  }
}

TEST(CanQueryTest, VisitsOnlyOverlappingZones) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 32, &stats);
  geom::Sphere query{{0.25, 0.25}, 0.1};
  Result<overlay::RangeQueryResult> result = can->RangeQuery(query, 0);
  ASSERT_TRUE(result.ok());
  int overlapping = 0;
  for (NodeId n = 0; n < can->num_nodes(); ++n) {
    if (can->zone(n).IntersectsSphere(query)) ++overlapping;
  }
  EXPECT_EQ(result->nodes_visited, overlapping);
}

TEST(CanQueryTest, QueryCenterOutsideCubeIsClamped) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 8, &stats);
  geom::Sphere query{{1.5, -0.5}, 0.2};
  EXPECT_TRUE(can->RangeQuery(query, 0).ok());
}

TEST(CanStorageTest, DistributionAndClear) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 8, &stats);
  PublishedCluster c;
  c.sphere = geom::Sphere{{0.5, 0.5}, 0.3};
  c.items = 4;
  c.cluster_id = 1;
  ASSERT_TRUE(can->Insert(c, 0).ok());
  int total_items = 0;
  for (const overlay::NodeStorage& s : can->StorageDistribution()) {
    total_items += s.items;
  }
  EXPECT_GE(total_items, 4);  // replicas multiply the stored count
  can->ClearStorage();
  for (const overlay::NodeStorage& s : can->StorageDistribution()) {
    EXPECT_EQ(s.clusters, 0);
  }
}

TEST(CanStorageTest, RemoveByOwnerErasesAllReplicas) {
  sim::NetworkStats stats;
  auto can = MakeCan(2, 16, &stats);
  for (uint64_t id = 1; id <= 6; ++id) {
    PublishedCluster c;
    c.sphere = geom::Sphere{{0.5, 0.5}, 0.3};
    c.owner_peer = static_cast<int>(id % 2);  // peers 0 and 1
    c.items = 1;
    c.cluster_id = id;
    ASSERT_TRUE(can->Insert(c, 0).ok());
  }
  const int removed = can->RemoveByOwner(1);
  EXPECT_GT(removed, 0);
  EXPECT_EQ(can->RemoveByOwner(1), 0);  // idempotent
  // Peer 0's clusters survive; peer 1's are gone everywhere.
  for (NodeId n = 0; n < can->num_nodes(); ++n) {
    for (const PublishedCluster& c : can->stored(n)) {
      EXPECT_EQ(c.owner_peer, 0);
    }
  }
}

TEST(CanHighDimTest, BuildsAndRoutesIn512Dims) {
  sim::NetworkStats stats;
  auto can = MakeCan(512, 20, &stats, 3);
  Rng rng(4);
  Vector key(512);
  for (double& x : key) x = rng.NextDouble();
  Result<RouteResult> route = can->Route(key, 0, sim::TrafficClass::kInsert, 128);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->destination, can->OwnerOf(key));
}

}  // namespace
}  // namespace hyperm::can
