#include "hyperm/flat_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/markov_generator.h"

namespace hyperm::core {
namespace {

data::Dataset LineDataset() {
  data::Dataset ds;
  for (int i = 0; i < 10; ++i) ds.items.push_back({static_cast<double>(i)});
  return ds;
}

TEST(FlatIndexTest, RangeSearchInclusive) {
  const data::Dataset ds = LineDataset();
  const FlatIndex index(ds);
  const std::vector<ItemId> hits = index.RangeSearch({3.0}, 1.0);
  EXPECT_EQ(hits, (std::vector<ItemId>{2, 3, 4}));
}

TEST(FlatIndexTest, KnnOrderedByDistance) {
  const data::Dataset ds = LineDataset();
  const FlatIndex index(ds);
  const std::vector<ItemId> knn = index.Knn({2.2}, 3);
  EXPECT_EQ(knn, (std::vector<ItemId>{2, 3, 1}));
}

TEST(FlatIndexTest, KnnClampedToDatasetSize) {
  const data::Dataset ds = LineDataset();
  const FlatIndex index(ds);
  EXPECT_EQ(index.Knn({0.0}, 100).size(), 10u);
  EXPECT_TRUE(index.Knn({0.0}, 0).empty());
}

TEST(FlatIndexTest, KnnRadiusMatchesKthDistance) {
  const data::Dataset ds = LineDataset();
  const FlatIndex index(ds);
  EXPECT_DOUBLE_EQ(index.KnnRadius({0.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(index.KnnRadius({0.0}, 3), 2.0);
  EXPECT_TRUE(std::isinf(index.KnnRadius({0.0}, 11)));
}

TEST(FlatIndexTest, KnnRadiusConsistentWithRange) {
  Rng rng(1);
  data::MarkovOptions options;
  options.count = 300;
  options.dim = 16;
  Result<data::Dataset> ds = data::GenerateMarkov(options, rng);
  ASSERT_TRUE(ds.ok());
  const FlatIndex index(*ds);
  const Vector& query = ds->items[7];
  for (int k : {1, 5, 20}) {
    const double radius = index.KnnRadius(query, k);
    const std::vector<ItemId> in_range = index.RangeSearch(query, radius);
    EXPECT_GE(static_cast<int>(in_range.size()), k);
  }
}

}  // namespace
}  // namespace hyperm::core
