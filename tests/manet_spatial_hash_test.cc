// Bit-identity oracle for the spatial-hash connectivity rebuild: the
// uniform-grid neighbour lists must be byte-equal to the brute-force O(n²)
// pairwise scan the topology shipped with, across random fields, geometry
// corner cases and long mobility walks. Any divergence would change BFS
// tie-breaking and therefore every routing result downstream.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "manet/topology.h"

namespace hyperm::manet {
namespace {

// The reference implementation: the exact pairwise scan RebuildConnectivity
// used before the spatial hash (ascending-id lists by construction).
std::vector<std::vector<int>> BruteForceNeighbors(const ManetTopology& t,
                                                  double radio_range_m) {
  const size_t n = static_cast<size_t>(t.num_nodes());
  std::vector<std::vector<int>> neighbors(n);
  const double range_sq = radio_range_m * radio_range_m;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (vec::SquaredDistance(t.position(static_cast<int>(i)),
                               t.position(static_cast<int>(j))) <= range_sq) {
        neighbors[i].push_back(static_cast<int>(j));
        neighbors[j].push_back(static_cast<int>(i));
      }
    }
  }
  return neighbors;
}

void ExpectNeighborsMatchBruteForce(const ManetTopology& t, double range) {
  const std::vector<std::vector<int>> want = BruteForceNeighbors(t, range);
  for (int i = 0; i < t.num_nodes(); ++i) {
    EXPECT_EQ(t.neighbors(i), want[static_cast<size_t>(i)]) << "node " << i;
  }
}

TEST(SpatialHashTest, MatchesBruteForceAcrossRandomFields) {
  // Sweeps density: many nodes on a small field (everyone in one cell
  // neighbourhood) through sparse fields spanning many cells.
  struct Case {
    int nodes;
    double field;
    double range;
  };
  const std::vector<Case> cases = {
      {30, 100.0, 60.0},  {40, 150.0, 50.0},  {60, 400.0, 80.0},
      {25, 1000.0, 260.0}, {50, 300.0, 55.0},
  };
  int seed = 100;
  for (const Case& c : cases) {
    Rng rng(static_cast<uint64_t>(seed++));
    TopologyOptions options;
    options.num_nodes = c.nodes;
    options.field_size_m = c.field;
    options.radio_range_m = c.range;
    options.max_placement_attempts = 2000;
    Result<ManetTopology> t = ManetTopology::Generate(options, rng);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ExpectNeighborsMatchBruteForce(*t, c.range);
  }
}

TEST(SpatialHashTest, MatchesBruteForceWhenRangeExceedsField) {
  // One grid cell total: the hash degenerates to the full scan.
  Rng rng(7);
  TopologyOptions options;
  options.num_nodes = 20;
  options.field_size_m = 50.0;
  options.radio_range_m = 200.0;
  Result<ManetTopology> t = ManetTopology::Generate(options, rng);
  ASSERT_TRUE(t.ok());
  ExpectNeighborsMatchBruteForce(*t, 200.0);
  for (int i = 0; i < t->num_nodes(); ++i) {
    EXPECT_EQ(t->neighbors(i).size(), static_cast<size_t>(t->num_nodes() - 1));
  }
}

TEST(SpatialHashTest, MatchesBruteForceOnDisconnectedLayouts) {
  TopologyOptions options;
  options.field_size_m = 1000.0;
  options.radio_range_m = 50.0;
  Result<ManetTopology> t = ManetTopology::FromPositions(
      options, {{10.0, 10.0}, {40.0, 10.0}, {70.0, 10.0},
                {910.0, 910.0}, {940.0, 910.0}, {0.0, 1000.0}});
  ASSERT_TRUE(t.ok());
  ExpectNeighborsMatchBruteForce(*t, 50.0);
}

TEST(SpatialHashTest, MatchesBruteForceAcrossMobilitySteps) {
  // The incremental grid maintenance (nodes migrating between cells) must
  // stay exact over long walks, including boundary-clamped positions.
  Rng rng(11);
  TopologyOptions options;
  options.num_nodes = 45;
  options.field_size_m = 300.0;
  options.radio_range_m = 60.0;
  options.max_placement_attempts = 2000;
  Result<ManetTopology> t = ManetTopology::Generate(options, rng);
  ASSERT_TRUE(t.ok());
  for (int step = 0; step < 200; ++step) {
    t->RandomWaypointStep(7.5, rng);
    if (step % 10 == 0 || step > 190) {
      ExpectNeighborsMatchBruteForce(*t, 60.0);
    }
  }
}

TEST(SpatialHashTest, EpochBumpsOnEveryRebuild) {
  Rng rng(12);
  Result<ManetTopology> t = ManetTopology::Generate(
      TopologyOptions{.num_nodes = 20, .field_size_m = 120.0, .radio_range_m = 50.0},
      rng);
  ASSERT_TRUE(t.ok());
  const uint64_t epoch0 = t->connectivity_epoch();
  EXPECT_GT(epoch0, 0u);
  t->RandomWaypointStep(2.0, rng);
  EXPECT_EQ(t->connectivity_epoch(), epoch0 + 1);
  t->RandomWaypointStep(2.0, rng);
  EXPECT_EQ(t->connectivity_epoch(), epoch0 + 2);
}

}  // namespace
}  // namespace hyperm::manet
