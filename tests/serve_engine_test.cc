// Serving-engine acceptance: admission control is never silent (every shed
// is accounted by cause AND emitted as a flight-recorder event), cached and
// shortcut-accelerated serving returns the exact answers the plain path
// returns (fail-soft: miner state can cost airtime, never recall), and the
// shortcut miner's promote/demote lifecycle behaves.

#include "serve/engine.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "geom/shapes.h"
#include "hyperm/network.h"
#include "obs/event_log.h"
#include "serve/shortcuts.h"

namespace hyperm::serve {
namespace {

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

Bed MakeBed(bool with_channel = true) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = 128;
  data_options.dim = 16;
  data_options.num_families = 4;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 8;
  assign_options.num_interest_classes = 4;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  core::HyperMOptions options;
  options.net.unreliable = true;
  if (with_channel) {
    options.channel.enabled = true;
    options.channel.field.field_size_m = 200.0;
    options.channel.field.radio_range_m = 80.0;
    options.channel.field.max_placement_attempts = 5000;
    options.channel.speed_m_per_s = 0.0;
  }
  Result<std::unique_ptr<core::HyperMNetwork>> net =
      core::HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  if (with_channel) {
    bed.network->AdvanceTo(bed.network->radio_channel()->DrainedAtMs() + 1.0);
  }
  return bed;
}

ServeOptions BaseServeOptions() {
  ServeOptions serve;
  serve.workload.duration_ms = 5'000.0;
  serve.workload.offered_qps = 3.0;
  serve.workload.num_templates = 6;
  serve.workload.zipf_s = 1.25;
  serve.workload.range_fraction = 1.0;
  serve.range_epsilon = 0.6;
  serve.deadline_ms = 30'000.0;
  return serve;
}

TEST(ServeEngineTest, AccountingIsExhaustive) {
  Bed bed = MakeBed();
  ServeOptions serve = BaseServeOptions();
  const std::vector<QueryTemplate> templates = MakeTemplates(
      bed.dataset.items, serve.workload, serve.range_epsilon, serve.knn_k);
  const std::vector<Arrival> schedule =
      GenerateArrivals(serve.workload, bed.network->num_peers());
  ServeEngine engine(bed.network.get(), serve);
  Result<ServeStats> stats = engine.Run(templates, schedule);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->offered, schedule.size());
  EXPECT_EQ(stats->offered, stats->admitted + stats->shed);
  EXPECT_EQ(stats->shed, stats->shed_tx_backlog + stats->shed_dispatch_lag);
  EXPECT_EQ(stats->admitted, stats->completed + stats->failed);
  EXPECT_EQ(stats->completed, stats->t2a_ms.size());
  EXPECT_TRUE(std::is_sorted(stats->t2a_ms.begin(), stats->t2a_ms.end()));
}

TEST(ServeEngineTest, ShedsAreNeverSilent) {
  obs::EventLog::Global().Reset();
  obs::EventLog::Global().Arm();
  Bed bed = MakeBed();
  ServeOptions serve = BaseServeOptions();
  // A watermark below one transmission's airtime: the first admitted query
  // saturates the "radio" and everything scheduled behind it must shed —
  // each with a recorded cause and a kServeShed event, never silently.
  serve.admission.max_backlog_ms = 0.1;
  const std::vector<QueryTemplate> templates = MakeTemplates(
      bed.dataset.items, serve.workload, serve.range_epsilon, serve.knn_k);
  const std::vector<Arrival> schedule =
      GenerateArrivals(serve.workload, bed.network->num_peers());
  ServeEngine engine(bed.network.get(), serve);
  Result<ServeStats> stats = engine.Run(templates, schedule);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->shed, 0u);
  EXPECT_EQ(stats->shed, stats->shed_tx_backlog + stats->shed_dispatch_lag);
  uint64_t shed_events = 0;
  uint64_t admit_events = 0;
  for (const obs::Event& e : obs::EventLog::Global().events()) {
    if (e.kind == obs::EventKind::kServeShed) {
      ++shed_events;
      // Every shed names a real cause.
      EXPECT_STRNE(obs::ShedCauseName(e.cause), "unknown");
    }
    if (e.kind == obs::EventKind::kServeAdmit) ++admit_events;
  }
  EXPECT_EQ(shed_events, stats->shed);
  EXPECT_EQ(admit_events, stats->admitted);
  obs::EventLog::Global().Reset();
}

// Caches + shortcuts must never change an answer — only its cost. Serve the
// identical schedule against identical beds with the serving aids on and
// off, and require the per-arrival answer sets to match exactly.
TEST(ServeEngineTest, CachesAndShortcutsPreserveAnswers) {
  auto run = [](bool serving_on) {
    Bed bed = MakeBed();
    ServeOptions serve = BaseServeOptions();
    serve.cache.enabled = serving_on;
    serve.cache.ttl_ms = serve.workload.duration_ms;
    serve.shortcuts.enabled = serving_on;
    const std::vector<QueryTemplate> templates = MakeTemplates(
        bed.dataset.items, serve.workload, serve.range_epsilon, serve.knn_k);
    const std::vector<Arrival> schedule =
        GenerateArrivals(serve.workload, bed.network->num_peers());
    std::vector<std::vector<core::ItemId>> answers;
    ServeEngine engine(bed.network.get(), serve);
    Result<ServeStats> stats = engine.Run(
        templates, schedule,
        [&](const Arrival&, const std::vector<core::ItemId>& items, bool,
            double) {
          std::vector<core::ItemId> sorted = items;
          std::sort(sorted.begin(), sorted.end());
          answers.push_back(std::move(sorted));
        });
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (serving_on) EXPECT_GT(stats->cache_hits, 0u);
    return answers;
  };
  const std::vector<std::vector<core::ItemId>> plain = run(false);
  const std::vector<std::vector<core::ItemId>> served = run(true);
  ASSERT_EQ(plain.size(), served.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], served[i]) << "answer " << i << " changed";
  }
}

// A provider that hints every probe at one fixed node — wrong zone for most
// queries, and (optionally) a node that is down. Either way the executor
// must deliver the same answers as the un-hinted path.
class PinnedHint : public core::ShortcutProvider {
 public:
  explicit PinnedHint(overlay::NodeId node) : node_(node) {}
  overlay::NodeId EntryHint(int, const geom::Sphere&) override {
    return node_;
  }
  void Observe(int, const geom::Sphere&, overlay::NodeId, bool,
               bool) override {}

 private:
  overlay::NodeId node_;
};

TEST(ServeEngineTest, StaleOrWrongHintsCostAirtimeNeverRecall) {
  auto answers_with_provider =
      [](core::ShortcutProvider* provider) {
        Bed bed = MakeBed();
        bed.network->set_shortcut_provider(provider);
        std::vector<std::vector<core::ItemId>> answers;
        for (int q = 0; q < 8; ++q) {
          Result<std::vector<core::ItemId>> r = bed.network->RangeQuery(
              bed.dataset.items[static_cast<size_t>(q * 17 % 128)], 0.6,
              /*querying_peer=*/q % bed.network->num_peers());
          EXPECT_TRUE(r.ok()) << r.status().ToString();
          std::vector<core::ItemId> sorted = std::move(r).value();
          std::sort(sorted.begin(), sorted.end());
          answers.push_back(std::move(sorted));
        }
        bed.network->set_shortcut_provider(nullptr);
        return answers;
      };
  const auto plain = answers_with_provider(nullptr);
  // Wrong-zone hints: the overlay re-routes from the hinted node.
  PinnedHint wrong(/*node=*/3);
  EXPECT_EQ(answers_with_provider(&wrong), plain);
  // Invalid hints: the executor falls back to the plain plan outright.
  PinnedHint invalid(overlay::kInvalidNode);
  EXPECT_EQ(answers_with_provider(&invalid), plain);
}

// -- ShortcutMiner lifecycle ------------------------------------------------

ShortcutOptions MinerOptions() {
  ShortcutOptions options;
  options.enabled = true;
  options.cells_per_dim = 4;
  options.window = 16;
  options.promote_threshold = 3;
  return options;
}

TEST(ShortcutMinerTest, PromotesAfterThresholdSupport) {
  ShortcutMiner miner(MinerOptions());
  const geom::Sphere sphere{Vector(4, 0.25), 0.1};
  EXPECT_EQ(miner.EntryHint(0, sphere), overlay::kInvalidNode);
  miner.Observe(0, sphere, /*entry_node=*/5, /*delivered=*/true,
                /*via_shortcut=*/false);
  miner.Observe(0, sphere, 5, true, false);
  EXPECT_EQ(miner.EntryHint(0, sphere), overlay::kInvalidNode);  // support 2
  miner.Observe(0, sphere, 5, true, false);
  EXPECT_EQ(miner.EntryHint(0, sphere), 5);  // support 3 == threshold
  EXPECT_EQ(miner.stats().promotions, 1u);
  // Same center, different layer: a distinct cell, still cold.
  EXPECT_EQ(miner.EntryHint(1, sphere), overlay::kInvalidNode);
}

TEST(ShortcutMinerTest, StaleHintDemotesAndScrubsSupport) {
  ShortcutMiner miner(MinerOptions());
  const geom::Sphere sphere{Vector(4, 0.25), 0.1};
  for (int i = 0; i < 3; ++i) miner.Observe(0, sphere, 5, true, false);
  ASSERT_EQ(miner.EntryHint(0, sphere), 5);
  // The hinted probe failed (node crashed): demote immediately, and the dead
  // node must not flap back in on its old window support.
  miner.Observe(0, sphere, 5, /*delivered=*/false, /*via_shortcut=*/true);
  EXPECT_EQ(miner.stats().demotions, 1u);
  EXPECT_EQ(miner.stats().stale, 1u);
  EXPECT_EQ(miner.EntryHint(0, sphere), overlay::kInvalidNode);
  miner.Observe(0, sphere, 5, true, false);
  miner.Observe(0, sphere, 5, true, false);
  EXPECT_EQ(miner.EntryHint(0, sphere), overlay::kInvalidNode);  // 2 < 3
  miner.Observe(0, sphere, 5, true, false);
  EXPECT_EQ(miner.EntryHint(0, sphere), 5);  // fresh evidence re-promotes
}

TEST(ShortcutMinerTest, WindowEvictionDropsOldSupport) {
  ShortcutOptions options = MinerOptions();
  options.window = 4;
  ShortcutMiner miner(options);
  const geom::Sphere hot{Vector(4, 0.25), 0.1};
  const geom::Sphere cold{Vector(4, 0.95), 0.1};
  for (int i = 0; i < 3; ++i) miner.Observe(0, hot, 5, true, false);
  ASSERT_EQ(miner.EntryHint(0, hot), 5);
  // Four colder observations push every `hot` observation out of the window;
  // the association stays promoted (demotion is failure-driven), but its
  // support is gone — verified via the counters having moved on.
  for (int i = 0; i < 4; ++i) miner.Observe(0, cold, 2, true, false);
  EXPECT_EQ(miner.EntryHint(0, cold), 2);
  EXPECT_EQ(miner.stats().promotions, 2u);
}

}  // namespace
}  // namespace hyperm::serve
