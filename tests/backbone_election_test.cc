#include "backbone/election.h"

#include <algorithm>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::backbone {
namespace {

using Graph = std::vector<std::vector<int>>;

void AddEdge(Graph* g, int a, int b) {
  (*g)[a].push_back(b);
  (*g)[b].push_back(a);
}

void SortNeighbors(Graph* g) {
  for (auto& adjacency : *g) {
    std::sort(adjacency.begin(), adjacency.end());
    adjacency.erase(std::unique(adjacency.begin(), adjacency.end()),
                    adjacency.end());
  }
}

// Erdos-Renyi graph with a deterministic seed; ascending neighbor lists to
// match the ManetTopology contract.
Graph RandomGraph(int n, double p, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.NextDouble() < p) AddEdge(&g, a, b);
    }
  }
  SortNeighbors(&g);
  return g;
}

// Component labels of the subgraph induced by up nodes (-1 for down nodes).
std::vector<int> UpComponents(const Graph& g, const std::vector<char>& up) {
  const int n = static_cast<int>(g.size());
  std::vector<int> label(n, -1);
  int next = 0;
  for (int start = 0; start < n; ++start) {
    if (!up[start] || label[start] >= 0) continue;
    std::deque<int> frontier{start};
    label[start] = next;
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop_front();
      for (int w : g[v]) {
        if (up[w] && label[w] < 0) {
          label[w] = next;
          frontier.push_back(w);
        }
      }
    }
    ++next;
  }
  return label;
}

// Full invariant audit of one election result.
void CheckInvariants(const Graph& g, const std::vector<char>& up,
                     const ElectionResult& r) {
  const int n = static_cast<int>(g.size());
  ASSERT_EQ(static_cast<int>(r.is_supernode.size()), n);

  // 1. Domination: every up node is a supernode or radio-adjacent to one.
  for (int v = 0; v < n; ++v) {
    if (!up[v]) {
      EXPECT_EQ(r.supernode_of[v], -1) << "down node " << v << " affiliated";
      continue;
    }
    if (r.is_supernode[v]) {
      EXPECT_EQ(r.supernode_of[v], v);
      continue;
    }
    const int s = r.supernode_of[v];
    ASSERT_GE(s, 0) << "up node " << v << " undominated";
    EXPECT_TRUE(r.is_supernode[s]);
    EXPECT_TRUE(up[s]);
    EXPECT_TRUE(std::binary_search(g[v].begin(), g[v].end(), s))
        << "node " << v << " affiliated to non-adjacent supernode " << s;
  }

  // 2. members_of partitions the up nodes.
  int member_total = 0;
  for (int s = 0; s < n; ++s) {
    for (int m : r.members_of[s]) {
      EXPECT_EQ(r.supernode_of[m], s);
      ++member_total;
    }
    EXPECT_TRUE(std::is_sorted(r.members_of[s].begin(), r.members_of[s].end()));
  }
  const int up_count =
      static_cast<int>(std::count(up.begin(), up.end(), char{1}));
  EXPECT_EQ(member_total, up_count);

  // 3. CDS connectivity per up-graph component: the supernodes of a
  // component must be mutually reachable through cds_neighbors edges, and
  // every cds edge must be realizable within 3 radio hops.
  const std::vector<int> component = UpComponents(g, up);
  std::vector<int> reach(n, -1);
  for (int root = 0; root < n; ++root) {
    if (!r.is_supernode[root]) continue;
    if (reach[root] >= 0) continue;
    std::deque<int> frontier{root};
    reach[root] = root;
    while (!frontier.empty()) {
      const int s = frontier.front();
      frontier.pop_front();
      for (int t : r.cds_neighbors[s]) {
        EXPECT_TRUE(r.is_supernode[t]);
        EXPECT_EQ(component[s], component[t]);
        if (reach[t] < 0) {
          reach[t] = root;
          frontier.push_back(t);
        }
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!r.is_supernode[a] || !r.is_supernode[b]) continue;
      if (component[a] != component[b]) continue;
      EXPECT_EQ(reach[a], reach[b])
          << "supernodes " << a << " and " << b
          << " share an island but are CDS-disconnected";
    }
  }

  // 4. Connectors are up, not supernodes, and the supernode+connector
  // subgraph is physically connected within each component.
  for (int v = 0; v < n; ++v) {
    if (!r.is_connector[v]) continue;
    EXPECT_TRUE(up[v]);
    EXPECT_FALSE(r.is_supernode[v]);
  }
  std::vector<char> in_backbone(n, 0);
  for (int v = 0; v < n; ++v) {
    in_backbone[v] = (r.is_supernode[v] || r.is_connector[v]) ? 1 : 0;
  }
  std::vector<int> backbone_reach(n, -1);
  for (int root = 0; root < n; ++root) {
    if (!in_backbone[root] || backbone_reach[root] >= 0) continue;
    std::deque<int> frontier{root};
    backbone_reach[root] = root;
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop_front();
      for (int w : g[v]) {
        if (in_backbone[w] && up[w] && backbone_reach[w] < 0) {
          backbone_reach[w] = root;
          frontier.push_back(w);
        }
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!r.is_supernode[a] || !r.is_supernode[b]) continue;
      if (component[a] != component[b]) continue;
      EXPECT_EQ(backbone_reach[a], backbone_reach[b])
          << "physical backbone split between supernodes " << a << ", " << b;
    }
  }

  // 5. Counts.
  EXPECT_EQ(r.num_supernodes,
            static_cast<int>(std::count(r.is_supernode.begin(),
                                        r.is_supernode.end(), char{1})));
  if (up_count > 0) {
    EXPECT_GE(r.num_supernodes, 1);
  }
}

TEST(ElectionTest, SingleNode) {
  Graph g(1);
  std::vector<char> up{1};
  const ElectionResult r = ElectCds(g, up);
  EXPECT_EQ(r.num_supernodes, 1);
  EXPECT_TRUE(r.is_supernode[0]);
  CheckInvariants(g, up, r);
}

TEST(ElectionTest, StarGraphElectsHub) {
  Graph g(6);
  for (int leaf = 1; leaf < 6; ++leaf) AddEdge(&g, 0, leaf);
  SortNeighbors(&g);
  std::vector<char> up(6, 1);
  const ElectionResult r = ElectCds(g, up);
  EXPECT_EQ(r.num_supernodes, 1);
  EXPECT_TRUE(r.is_supernode[0]);
  for (int leaf = 1; leaf < 6; ++leaf) EXPECT_EQ(r.supernode_of[leaf], 0);
  CheckInvariants(g, up, r);
}

TEST(ElectionTest, PathGraphInvariants) {
  Graph g(10);
  for (int v = 0; v + 1 < 10; ++v) AddEdge(&g, v, v + 1);
  SortNeighbors(&g);
  std::vector<char> up(10, 1);
  const ElectionResult r = ElectCds(g, up);
  CheckInvariants(g, up, r);
  // A 10-path needs at least ceil(10/3) dominators.
  EXPECT_GE(r.num_supernodes, 4);
}

TEST(ElectionTest, RandomGraphsAllInvariants) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (double p : {0.05, 0.15, 0.4}) {
      const Graph g = RandomGraph(40, p, seed);
      std::vector<char> up(40, 1);
      const ElectionResult r = ElectCds(g, up);
      CheckInvariants(g, up, r);
    }
  }
}

TEST(ElectionTest, DisconnectedIslandsElectPerIsland) {
  // Two cliques with no bridge: each island elects its own supernode and the
  // CDS never links across.
  Graph g(8);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) AddEdge(&g, a, b);
  }
  for (int a = 4; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) AddEdge(&g, a, b);
  }
  SortNeighbors(&g);
  std::vector<char> up(8, 1);
  const ElectionResult r = ElectCds(g, up);
  CheckInvariants(g, up, r);
  EXPECT_EQ(r.num_supernodes, 2);
  for (int s = 0; s < 8; ++s) {
    for (int t : r.cds_neighbors[s]) {
      EXPECT_EQ(s / 4, t / 4) << "CDS edge crossed islands";
    }
  }
}

TEST(ElectionTest, DeterministicAcrossInvocations) {
  const Graph g = RandomGraph(50, 0.12, 99);
  std::vector<char> up(50, 1);
  const ElectionResult a = ElectCds(g, up);
  const ElectionResult b = ElectCds(g, up);
  EXPECT_EQ(a.is_supernode, b.is_supernode);
  EXPECT_EQ(a.is_connector, b.is_connector);
  EXPECT_EQ(a.supernode_of, b.supernode_of);
  EXPECT_EQ(a.cds_neighbors, b.cds_neighbors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(ElectionTest, DownNodesAreExcluded) {
  const Graph g = RandomGraph(30, 0.2, 5);
  std::vector<char> up(30, 1);
  up[3] = up[7] = up[21] = 0;
  const ElectionResult r = ElectCds(g, up);
  CheckInvariants(g, up, r);
  EXPECT_FALSE(r.is_supernode[3]);
  EXPECT_FALSE(r.is_supernode[7]);
  EXPECT_FALSE(r.is_supernode[21]);
}

TEST(ElectionTest, StickyReElectionAfterCrash) {
  const Graph g = RandomGraph(40, 0.15, 17);
  std::vector<char> up(40, 1);
  const ElectionResult first = ElectCds(g, up);
  CheckInvariants(g, up, first);

  // Crash every third supernode, then re-elect with the previous result:
  // invariants must converge again and surviving supernodes should mostly
  // keep their roles (stickiness — only provably redundant ones retire).
  std::vector<char> after = up;
  int crashed = 0;
  for (int v = 0; v < 40; ++v) {
    if (first.is_supernode[v] && (crashed++ % 3 == 0)) after[v] = 0;
  }
  const ElectionResult second = ElectCds(g, after, &first.is_supernode);
  CheckInvariants(g, after, second);

  int kept = 0, survivors = 0;
  for (int v = 0; v < 40; ++v) {
    if (first.is_supernode[v] && after[v]) {
      ++survivors;
      if (second.is_supernode[v]) ++kept;
    }
  }
  if (survivors > 0) {
    EXPECT_GE(kept * 2, survivors)
        << "re-election churned more than half the surviving supernodes";
  }
}

TEST(ElectionTest, RejoinConvergesWithStickySeeds) {
  const Graph g = RandomGraph(30, 0.2, 23);
  std::vector<char> degraded(30, 1);
  for (int v = 0; v < 30; v += 5) degraded[v] = 0;
  const ElectionResult during = ElectCds(g, degraded);
  CheckInvariants(g, degraded, during);

  std::vector<char> healed(30, 1);
  const ElectionResult after = ElectCds(g, healed, &during.is_supernode);
  CheckInvariants(g, healed, after);
}

}  // namespace
}  // namespace hyperm::backbone
