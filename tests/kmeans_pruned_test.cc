// The pruned (Hamerly-bound) k-means kernel must be bit-identical to the
// naive full-scan reference on every input — the pruning may only skip work
// whose outcome is provably unchanged, and any near-tie must fall through to
// the exact scan with the reference tie-breaking.

#include "cluster/kmeans.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm::cluster {
namespace {

KMeansResult RunKMeans(const std::vector<Vector>& points, KMeansOptions options,
                 bool pruned, uint64_t seed) {
  options.pruned = pruned;
  Rng rng(seed);
  Result<KMeansResult> r = KMeans(points, options, rng);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// Exact (bitwise, via ==) equality of every output field.
void ExpectIdentical(const KMeansResult& a, const KMeansResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.inertia, b.inertia);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].centroid, b.clusters[c].centroid) << "cluster " << c;
    EXPECT_EQ(a.clusters[c].radius, b.clusters[c].radius) << "cluster " << c;
    EXPECT_EQ(a.clusters[c].count, b.clusters[c].count) << "cluster " << c;
  }
}

void ExpectKernelsAgree(const std::vector<Vector>& points, KMeansOptions options,
                        uint64_t seed) {
  ExpectIdentical(RunKMeans(points, options, /*pruned=*/true, seed),
                  RunKMeans(points, options, /*pruned=*/false, seed));
}

std::vector<Vector> RandomBlobs(int num_blobs, int per_blob, int dim, double spread,
                                Rng& rng) {
  std::vector<Vector> points;
  for (int b = 0; b < num_blobs; ++b) {
    Vector center(static_cast<size_t>(dim));
    for (double& x : center) x = rng.Uniform(-5.0, 5.0);
    for (int i = 0; i < per_blob; ++i) {
      Vector p(center);
      for (double& x : p) x += rng.Gaussian(0.0, spread);
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(KMeansPrunedTest, MatchesNaiveOnRandomBlobs) {
  Rng data_rng(11);
  for (int dim : {2, 8, 64}) {
    for (int k : {1, 4, 16}) {
      const std::vector<Vector> points = RandomBlobs(4, 60, dim, 0.4, data_rng);
      KMeansOptions options;
      options.k = k;
      ExpectKernelsAgree(points, options, 100 + static_cast<uint64_t>(dim * k));
    }
  }
}

TEST(KMeansPrunedTest, MatchesNaiveOnOverlappingBlobs) {
  // Heavy overlap produces many near-ties, the regime where sloppy bound
  // maintenance would first diverge from the exact scan.
  Rng data_rng(23);
  const std::vector<Vector> points = RandomBlobs(6, 80, 8, 3.0, data_rng);
  KMeansOptions options;
  options.k = 6;
  ExpectKernelsAgree(points, options, 7);
}

TEST(KMeansPrunedTest, MatchesNaiveOnAllDuplicatePoints) {
  const std::vector<Vector> points(20, Vector{1.5, -2.5, 3.5});
  KMeansOptions options;
  options.k = 5;
  ExpectKernelsAgree(points, options, 42);
}

TEST(KMeansPrunedTest, MatchesNaiveWhenKExceedsDistinctPoints) {
  // 3 distinct values, k = 8: forces the empty-cluster reseed path, which in
  // the pruned kernel requires an exact best_sq refresh before the farthest
  // pick.
  std::vector<Vector> points;
  for (int i = 0; i < 12; ++i) {
    points.push_back({static_cast<double>(i % 3), 0.0});
  }
  KMeansOptions options;
  options.k = 8;
  ExpectKernelsAgree(points, options, 9);
}

TEST(KMeansPrunedTest, MatchesNaiveOnTiedGridPoints) {
  // Unit lattice: many points exactly equidistant from competing centroids,
  // so tie-breaks (lowest index wins) must match everywhere.
  std::vector<Vector> points;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      points.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  KMeansOptions options;
  options.k = 4;
  ExpectKernelsAgree(points, options, 3);
  options.k = 9;
  ExpectKernelsAgree(points, options, 4);
}

TEST(KMeansPrunedTest, MatchesNaiveWithZeroToleranceChurn) {
  // tolerance = 0 runs the full iteration budget; bounds drift accumulates
  // over many updates and must still never flip a decision.
  Rng data_rng(31);
  const std::vector<Vector> points = RandomBlobs(5, 50, 16, 2.0, data_rng);
  KMeansOptions options;
  options.k = 10;
  options.tolerance = 0.0;
  options.max_iterations = 100;
  ExpectKernelsAgree(points, options, 17);
}

TEST(KMeansPrunedTest, MatchesNaiveWithUniformSeeding) {
  Rng data_rng(37);
  const std::vector<Vector> points = RandomBlobs(4, 40, 8, 1.0, data_rng);
  KMeansOptions options;
  options.k = 6;
  options.plus_plus_seeding = false;
  ExpectKernelsAgree(points, options, 5);
}

TEST(KMeansPrunedTest, PrunedIsDeterministicAcrossRuns) {
  Rng data_rng(41);
  const std::vector<Vector> points = RandomBlobs(3, 70, 32, 0.8, data_rng);
  KMeansOptions options;
  options.k = 8;
  ExpectIdentical(RunKMeans(points, options, /*pruned=*/true, 55),
                  RunKMeans(points, options, /*pruned=*/true, 55));
}

TEST(PickWeightedIndexTest, ReturnsFirstIndexPastTarget) {
  const std::vector<double> weights{1.0, 2.0, 3.0};
  EXPECT_EQ(internal::PickWeightedIndex(weights, 0.5), 0u);
  EXPECT_EQ(internal::PickWeightedIndex(weights, 1.0), 0u);  // <= boundary
  EXPECT_EQ(internal::PickWeightedIndex(weights, 1.5), 1u);
  EXPECT_EQ(internal::PickWeightedIndex(weights, 5.9), 2u);
}

TEST(PickWeightedIndexTest, FallbackClampsToLastPositiveWeight) {
  // A rounding sliver of target surviving the scan must land on a point that
  // can actually be chosen — never on a trailing zero-weight point, which
  // coincides with an already-picked centroid.
  const std::vector<double> weights{3.0, 2.0, 0.0, 0.0};
  EXPECT_EQ(internal::PickWeightedIndex(weights, 100.0), 1u);
  const std::vector<double> tail_positive{0.0, 0.0, 1.0};
  EXPECT_EQ(internal::PickWeightedIndex(tail_positive, 100.0), 2u);
}

}  // namespace
}  // namespace hyperm::cluster
