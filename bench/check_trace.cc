// Chrome-trace validator for the flight recorder's --trace-out artifacts:
// parses the JSON, then runs obs::ValidateChromeTrace — events sorted by ts,
// every flow/async id opened and closed, known phases only, required fields
// present. Exits 0 when the file would load cleanly in Perfetto / Chrome
// tracing, 1 with a diagnostic otherwise.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/result.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"

namespace hyperm {
namespace {

int Run(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "check_trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<obs::Json> parsed = obs::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "check_trace: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const Status status = obs::ValidateChromeTrace(parsed.value());
  if (!status.ok()) {
    std::fprintf(stderr, "check_trace: %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  const obs::Json* events = parsed.value().Find("traceEvents");
  std::printf("check_trace: %s OK (%zu trace events)\n", path.c_str(),
              events != nullptr ? events->items().size() : 0);
  return 0;
}

}  // namespace
}  // namespace hyperm

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: check_trace <trace.json>\n");
    return 2;
  }
  return hyperm::Run(argv[1]);
}
