// Ablation: wavelet family (DESIGN.md; paper Section 3.1 footnote).
//
// The paper proves the radius-contraction theorem for the averaging Haar
// wavelet and notes other wavelets admit similar (looser) analyses. This
// ablation swaps the transform: the averaging Haar's tight per-level
// thresholds produce the smallest candidate sets; the orthonormal families
// fall back to the isometry bound (scale 1), widening per-level queries and
// with them the query traffic — while every family preserves the
// no-false-dismissal guarantee.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Ablation", "wavelet family (Haar-avg vs orthonormal vs D4)",
                     paper);

  const wavelet::WaveletKind kKinds[] = {
      wavelet::WaveletKind::kHaarAveraging,
      wavelet::WaveletKind::kHaarOrthonormal,
      wavelet::WaveletKind::kDaubechies4,
  };

  std::printf("%-18s %12s %12s %14s %12s %12s\n", "wavelet", "candidates",
              "query hops", "range recall", "knn prec", "knn recall");
  for (wavelet::WaveletKind kind : kKinds) {
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = 10;
    options.wavelet_kind = kind;
    auto bed = bench::BuildEffectivenessBed(paper, options);
    const core::FlatIndex oracle(bed->dataset);

    bed->network->mutable_stats().Reset();
    double candidates = 0.0;
    std::vector<core::PrecisionRecall> range, knn;
    const int num_queries = 25;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      const double eps = oracle.KnnRadius(query, 20);
      core::RangeQueryInfo info;
      Result<std::vector<core::ItemId>> full =
          bed->network->RangeQuery(query, eps, q % 50, /*max_peers=*/-1, &info);
      core::KnnOptions knn_options;
      Result<std::vector<core::ItemId>> fetched =
          bed->network->KnnQuery(query, 10, knn_options, q % 50);
      if (!full.ok() || !fetched.ok()) {
        std::fprintf(stderr, "query failed\n");
        return 1;
      }
      candidates += info.candidate_peers;
      range.push_back(core::Evaluate(*full, oracle.RangeSearch(query, eps)));
      knn.push_back(core::Evaluate(*fetched, oracle.Knn(query, 10)));
    }
    const uint64_t query_hops = bed->network->stats().hops(sim::TrafficClass::kQuery);
    std::printf("%-18s %12.1f %12llu %14.3f %12.3f %12.3f\n",
                wavelet::WaveletKindName(kind).c_str(), candidates / num_queries,
                static_cast<unsigned long long>(query_hops),
                core::Summarize(range).mean_recall, core::Summarize(knn).mean_precision,
                core::Summarize(knn).mean_recall);
  }
  std::printf("\nexpected shape: every family keeps range recall at 1.0; the\n"
              "averaging Haar's tighter thresholds prune more candidates for\n"
              "less query traffic\n");
  return 0;
}
