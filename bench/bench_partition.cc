// Partition-tolerance sweep: range-query recall under geometry-driven radio
// partitions, legacy layer-dropping query path vs the partition-tolerant
// planner (CAN detour routing + heal-time re-issue), across mobility speeds
// (partition density) and heal windows. Fully seeded; the JSON report is
// diffed against bench/baselines/BENCH_partition.json in CI.
//
// Method: for each speed, a query-free probe deployment walks the mobility
// clock and records the first few split onsets. Mobility draws from its own
// per-tick RNG stream, so every deployment at that speed — probe, legacy,
// planner — sees the byte-identical split schedule, and the recorded times
// are split moments in all of them. Each (speed, heal-window) cell then
// replays the same query batches at those times and scores recall against a
// flat-scan oracle.
//
// The binary fails hard unless (a) every probe found its splits (the field
// really partitions) and (b) aggregate planner recall strictly exceeds the
// legacy path's — the repo's executable form of the planner's acceptance
// criterion.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "obs/metrics.h"

using namespace hyperm;

namespace {

constexpr double kEpsilon = 0.8;
constexpr int kBatches = 4;           // split moments sampled per speed
constexpr int kQueriesPerBatch = 8;
constexpr double kMinBatchGapMs = 10000.0;  // keep heal waits from colliding

// Flight-recorder time-series period, set from --trace-out in main. Sampling
// probes only read state, so deployments are bit-identical with or without
// them; 0 keeps the simulator event queue at its historical contents.
double g_trace_series_period_ms = 0.0;

struct PartitionBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

std::unique_ptr<PartitionBed> BuildBed(bool paper, double speed_m_per_s,
                                       const core::QueryPlanOptions& plan) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = paper ? 2000 : 400;
  data_options.dim = paper ? 128 : 32;
  data_options.num_families = 8;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  auto bed = std::make_unique<PartitionBed>();
  bed->dataset = std::move(dataset).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = paper ? 50 : 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = paper ? 12 : 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed->dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n", assignment.status().ToString().c_str());
    std::exit(1);
  }
  bed->assignment = std::move(assignment).value();
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.retry.adaptive = true;
  options.net.summary_ttl_ms = 1500.0;
  options.net.republish_period_ms = 400.0;
  options.channel.enabled = true;
  // Sparse enough that mobility splits the field; scaled with the peer count
  // so the paper bed keeps roughly the per-peer area of the default one. The
  // paper field needs the slightly longer radio range: at 60 m the 460 m
  // field sits below the connectivity threshold and no seed in the placement
  // budget yields a connected start.
  options.channel.field.field_size_m = paper ? 460.0 : 260.0;
  options.channel.field.radio_range_m = paper ? 72.0 : 60.0;
  options.channel.field.max_placement_attempts = 5000;
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = speed_m_per_s;
  options.plan = plan;
  options.trace_series_period_ms = g_trace_series_period_ms;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(bed->dataset, bed->assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    std::exit(1);
  }
  bed->network = std::move(network).value();
  return bed;
}

/// Walks a query-free deployment's clock and returns the first kBatches
/// split onsets at least kMinBatchGapMs apart (empty on a field that never
/// splits within the walk budget).
std::vector<double> ProbeSplitTimes(bool paper, double speed_m_per_s) {
  auto probe = BuildBed(paper, speed_m_per_s, core::QueryPlanOptions{});
  const channel::RadioChannel* radio = probe->network->radio_channel();
  const double tick = radio->tick_ms();
  std::vector<double> times;
  double t = radio->DrainedAtMs() + 1.0;
  probe->network->AdvanceTo(t);
  constexpr int kMaxTicks = 6000;
  for (int step = 0; step < kMaxTicks && static_cast<int>(times.size()) < kBatches;
       ++step) {
    t += tick;
    probe->network->AdvanceTo(t);
    if (radio->connected()) continue;
    if (!times.empty() && t - times.back() < kMinBatchGapMs) continue;
    times.push_back(t);
  }
  return times;
}

struct CellResult {
  double mean_recall = 0.0;
  double mean_latency_ms = 0.0;
};

/// Replays the recorded query batches on a fresh deployment and scores them.
CellResult RunCell(bool paper, double speed_m_per_s,
                   const core::QueryPlanOptions& plan,
                   const std::vector<double>& batch_times,
                   const core::FlatIndex& oracle) {
  auto bed = BuildBed(paper, speed_m_per_s, plan);
  const size_t n = bed->dataset.size();
  const int num_peers = bed->network->num_peers();
  std::vector<core::PrecisionRecall> results;
  double latency_sum = 0.0;
  int query_count = 0;
  for (size_t b = 0; b < batch_times.size(); ++b) {
    // Heal waits from the previous batch may already have advanced the clock
    // past this batch's split; never rewind the simulator.
    bed->network->AdvanceTo(std::max(batch_times[b], bed->network->now()));
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      const int i = static_cast<int>(b) * kQueriesPerBatch + q;
      const Vector& center = bed->dataset.items[(static_cast<size_t>(i) * 17) % n];
      core::RangeQueryInfo info;
      Result<std::vector<core::ItemId>> r = bed->network->RangeQuery(
          center, kEpsilon, /*querying_peer=*/i % num_peers,
          /*max_peers_contacted=*/-1, &info);
      if (!r.ok()) {
        std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
        std::exit(1);
      }
      results.push_back(core::Evaluate(*r, oracle.RangeSearch(center, kEpsilon)));
      latency_sum += info.latency_ms;
      ++query_count;
    }
  }
  CellResult cell;
  cell.mean_recall = core::Summarize(results).mean_recall;
  cell.mean_latency_ms = latency_sum / query_count;
  return cell;
}

// --- Scale-out tier ---------------------------------------------------------
//
// --scale-smoke / --scale replace the recall sweep with a large-deployment
// throughput run: generate the dataset, build the full stack (CAN overlay +
// radio channel + spatial-hash topology) at 1k peers (and 10k under --scale),
// run a query burst, and gauge per-phase wall time, throughput and peak RSS.
// Counters stay deterministic (seeded); wall/throughput gauges are checked
// with wide or absolute tolerances from the baseline's "check" object.

/// Field side (m) that keeps mean radio degree ~12 at 50 m range:
/// side = sqrt(n * pi * r^2 / 12).
double ScaleFieldSide(int num_peers) {
  constexpr double kRange = 50.0;
  constexpr double kTargetDegree = 12.0;
  return std::sqrt(static_cast<double>(num_peers) * 3.14159265358979323846 *
                   kRange * kRange / kTargetDegree);
}

void RunScaleDeployment(int num_peers, int num_items, int num_queries,
                        const char* prefix) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::printf("\n--- scale deployment: %d peers, %d items ---\n", num_peers,
              num_items);

  bench::PhaseTimer dataset_timer;
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = num_items;
  data_options.dim = 64;
  data_options.num_families = 8;
  Result<data::Dataset> dataset_result = data::GenerateMarkov(data_options, rng);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_result.status().ToString().c_str());
    std::exit(1);
  }
  // The network points into the dataset; keep it alive for the whole run.
  const data::Dataset dataset = std::move(dataset_result).value();
  const double dataset_ms = dataset_timer.ElapsedMs();

  bench::PhaseTimer build_timer;
  data::AssignmentOptions assign_options;
  assign_options.num_peers = num_peers;
  assign_options.num_interest_classes = 64;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = std::max(8, num_peers / 32);
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n",
                 assignment.status().ToString().c_str());
    std::exit(1);
  }
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.retry.adaptive = true;
  options.net.summary_ttl_ms = 1500.0;
  options.net.republish_period_ms = 400.0;
  options.channel.enabled = true;
  options.channel.field.field_size_m = ScaleFieldSide(num_peers);
  options.channel.field.radio_range_m = 50.0;
  options.channel.field.max_placement_attempts = 5000;
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = 15.0;
  options.trace_series_period_ms = g_trace_series_period_ms;
  Result<std::unique_ptr<core::HyperMNetwork>> network_result =
      core::HyperMNetwork::Build(dataset, assignment.value(), options, rng);
  if (!network_result.ok()) {
    std::fprintf(stderr, "network: %s\n",
                 network_result.status().ToString().c_str());
    std::exit(1);
  }
  const std::unique_ptr<core::HyperMNetwork> network =
      std::move(network_result).value();
  const double build_ms = build_timer.ElapsedMs();

  bench::PhaseTimer query_timer;
  const size_t n = dataset.size();
  uint64_t results_returned = 0;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& center = dataset.items[(static_cast<size_t>(q) * 131) % n];
    Result<std::vector<core::ItemId>> r = network->RangeQuery(
        center, kEpsilon, /*querying_peer=*/q % num_peers, -1);
    if (!r.ok()) {
      std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    results_returned += r->size();
  }
  const double query_ms = query_timer.ElapsedMs();

  const double build_items_per_sec =
      build_ms > 0.0 ? 1000.0 * num_items / build_ms : 0.0;
  const double queries_per_sec =
      query_ms > 0.0 ? 1000.0 * num_queries / query_ms : 0.0;
  const double rss_mb = bench::PeakRssMb();
  std::printf("  dataset: %10.1f ms\n", dataset_ms);
  std::printf("  build:   %10.1f ms (%.0f items/s)\n", build_ms,
              build_items_per_sec);
  std::printf("  queries: %10.1f ms (%d queries, %.1f q/s, %llu results)\n",
              query_ms, num_queries, queries_per_sec,
              static_cast<unsigned long long>(results_returned));
  std::printf("  peak RSS: %9.1f MiB\n", rss_mb);

  char key[96];
  std::snprintf(key, sizeof(key), "scale.%s.dataset_wall_ms", prefix);
  reg.GetGauge(key).Set(dataset_ms);
  std::snprintf(key, sizeof(key), "scale.%s.build_wall_ms", prefix);
  reg.GetGauge(key).Set(build_ms);
  std::snprintf(key, sizeof(key), "scale.%s.query_wall_ms", prefix);
  reg.GetGauge(key).Set(query_ms);
  std::snprintf(key, sizeof(key), "scale.%s.build_items_per_sec", prefix);
  reg.GetGauge(key).Set(build_items_per_sec);
  std::snprintf(key, sizeof(key), "scale.%s.queries_per_sec", prefix);
  reg.GetGauge(key).Set(queries_per_sec);
  std::snprintf(key, sizeof(key), "scale.%s.results_returned", prefix);
  reg.GetGauge(key).Set(static_cast<double>(results_returned));
  std::snprintf(key, sizeof(key), "scale.%s.peak_rss_mb", prefix);
  reg.GetGauge(key).Set(rss_mb);
}

int RunScaleTier(bench::ScaleMode mode, int argc, char** argv) {
  bench::PrintHeader("Partition --scale",
                     "large-deployment build/query throughput + peak RSS",
                     /*paper_scale=*/false);
  if (mode == bench::ScaleMode::kSmoke) {
    // CI tier: 1k peers, trimmed items — completes in minutes under TSan.
    RunScaleDeployment(/*num_peers=*/1000, /*num_items=*/20000,
                       /*num_queries=*/16, "p1000");
  } else {
    RunScaleDeployment(/*num_peers=*/1000, /*num_items=*/100000,
                       /*num_queries=*/32, "p1000");
    RunScaleDeployment(/*num_peers=*/10000, /*num_items=*/100000,
                       /*num_queries=*/16, "p10000");
  }
  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_partition");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  g_trace_series_period_ms = bench::ArmFlightRecorder(argc, argv);
  const bench::ScaleMode scale = bench::ScaleTier(argc, argv);
  if (scale != bench::ScaleMode::kNone) return RunScaleTier(scale, argc, argv);
  bench::PrintHeader("Partition", "split-time recall: legacy path vs planner sweep",
                     paper);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  bench::PhaseTimer sweep_timer;  // whole-sweep wall clock, reported below

  const std::vector<double> speeds = {15.0, 25.0};
  const std::vector<double> heal_windows_ms = {0.0, 300.0, 900.0};

  std::printf("%-12s", "speed (m/s)");
  for (double heal : heal_windows_ms) {
    char head[32];
    if (heal == 0.0) {
      std::snprintf(head, sizeof(head), "legacy");
    } else {
      std::snprintf(head, sizeof(head), "heal %.0fms", heal);
    }
    std::printf(" %14s", head);
  }
  std::printf("\n");

  double legacy_recall_sum = 0.0;
  double planner_recall_sum = 0.0;
  double legacy_latency_sum = 0.0;
  double planner_latency_sum = 0.0;
  int total_batches = 0;
  for (double speed : speeds) {
    const std::vector<double> batch_times = ProbeSplitTimes(paper, speed);
    if (static_cast<int>(batch_times.size()) < kBatches) {
      std::fprintf(stderr,
                   "FAIL: %zu/%d splits at %.0f m/s; the field is not "
                   "partitioning\n",
                   batch_times.size(), kBatches, speed);
      return 1;
    }
    total_batches += static_cast<int>(batch_times.size());

    // The oracle only needs the dataset, identical across beds by seeding.
    auto oracle_bed = BuildBed(paper, speed, core::QueryPlanOptions{});
    const core::FlatIndex oracle(oracle_bed->dataset);

    std::printf("%-12.0f", speed);
    for (double heal : heal_windows_ms) {
      core::QueryPlanOptions plan;
      if (heal > 0.0) {
        plan.route_detours = 4;
        plan.reissue_budget = 3;
        plan.heal_window_ms = heal;
      }
      const CellResult cell =
          RunCell(paper, speed, plan, batch_times, oracle);
      std::printf(" %14.3f", cell.mean_recall);
      char key[64];
      std::snprintf(key, sizeof(key), "benchp.v%.0f_h%.0f_recall", speed, heal);
      reg.GetGauge(key).Set(cell.mean_recall);
      if (heal == 0.0) {
        legacy_recall_sum += cell.mean_recall;
        legacy_latency_sum += cell.mean_latency_ms;
      } else if (heal == heal_windows_ms.back()) {
        planner_recall_sum += cell.mean_recall;
        planner_latency_sum += cell.mean_latency_ms;
      }
    }
    std::printf("\n");
  }

  const double num_speeds = static_cast<double>(speeds.size());
  const double legacy_recall = legacy_recall_sum / num_speeds;
  const double planner_recall = planner_recall_sum / num_speeds;
  std::printf("\nsplit batches sampled: %d (x%d queries each)\n", total_batches,
              kQueriesPerBatch);
  std::printf("aggregate split-time recall: legacy %.3f, planner %.3f\n",
              legacy_recall, planner_recall);
  std::printf("mean latency: legacy %.1f ms, planner %.1f ms (heal waits bill "
              "to the query)\n",
              legacy_latency_sum / num_speeds, planner_latency_sum / num_speeds);

  reg.GetGauge("benchp.legacy_recall").Set(legacy_recall);
  reg.GetGauge("benchp.planner_recall").Set(planner_recall);
  reg.GetGauge("benchp.legacy_latency_ms").Set(legacy_latency_sum / num_speeds);
  reg.GetGauge("benchp.planner_latency_ms").Set(planner_latency_sum / num_speeds);
  reg.GetGauge("benchp.split_batches").Set(static_cast<double>(total_batches));
  // Wall time of the whole sweep ("wall" keys are exempt from baseline
  // diffs); this is the number the scale-out PR's 2x acceptance is read from.
  reg.GetGauge("benchp.sweep_wall_ms").Set(sweep_timer.ElapsedMs());
  std::printf("sweep wall time: %.1f s\n", sweep_timer.ElapsedMs() / 1000.0);

  if (planner_recall <= legacy_recall) {
    std::fprintf(stderr,
                 "FAIL: planner recall %.3f not above the legacy path's %.3f "
                 "under active partitions\n",
                 planner_recall, legacy_recall);
    return 1;
  }
  std::printf("planner strictly above legacy under partitions: yes\n");

  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_partition");
  return 0;
}
