// Ablation: score aggregation policy (DESIGN.md).
//
// The paper chooses the *minimum* per-level score because it "prunes many
// candidate peers" while provably causing no false dismissals for range
// queries. This ablation quantifies the pruning/quality trade-off against
// the sum and product alternatives: candidate-set size, range recall under a
// fixed contact budget, and k-NN quality.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Ablation", "score aggregation policy (min vs sum vs product)",
                     paper);

  const struct {
    core::ScorePolicy policy;
    const char* name;
  } kPolicies[] = {
      {core::ScorePolicy::kMin, "min"},
      {core::ScorePolicy::kSum, "sum"},
      {core::ScorePolicy::kProduct, "product"},
  };

  std::printf("%-10s %12s %18s %14s %12s %12s\n", "policy", "candidates",
              "range recall@8", "range recall", "knn prec", "knn recall");
  for (const auto& entry : kPolicies) {
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = 10;
    options.score_policy = entry.policy;
    auto bed = bench::BuildEffectivenessBed(paper, options);
    const core::FlatIndex oracle(bed->dataset);

    double candidates = 0.0;
    std::vector<core::PrecisionRecall> range_budget, range_full, knn;
    const int num_queries = 25;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      const double eps = oracle.KnnRadius(query, 20);
      const std::vector<core::ItemId> truth = oracle.RangeSearch(query, eps);

      core::RangeQueryInfo info;
      Result<std::vector<core::ItemId>> budget =
          bed->network->RangeQuery(query, eps, q % 50, /*max_peers=*/8, &info);
      Result<std::vector<core::ItemId>> full =
          bed->network->RangeQuery(query, eps, q % 50, /*max_peers=*/-1);
      core::KnnOptions knn_options;
      Result<std::vector<core::ItemId>> fetched =
          bed->network->KnnQuery(query, 10, knn_options, q % 50);
      if (!budget.ok() || !full.ok() || !fetched.ok()) {
        std::fprintf(stderr, "query failed\n");
        return 1;
      }
      candidates += info.candidate_peers;
      range_budget.push_back(core::Evaluate(*budget, truth));
      range_full.push_back(core::Evaluate(*full, truth));
      knn.push_back(core::Evaluate(*fetched, oracle.Knn(query, 10)));
    }
    const auto sb = core::Summarize(range_budget);
    const auto sf = core::Summarize(range_full);
    const auto sk = core::Summarize(knn);
    std::printf("%-10s %12.1f %18.3f %14.3f %12.3f %12.3f\n", entry.name,
                candidates / num_queries, sb.mean_recall, sf.mean_recall,
                sk.mean_precision, sk.mean_recall);
  }
  std::printf("\nexpected shape: min prunes hardest while keeping full-contact\n"
              "range recall at 1.0 (no false dismissals); sum keeps more\n"
              "candidates for the same final recall\n");
  return 0;
}
