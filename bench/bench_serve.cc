// Heavy-traffic serving sweep: open-loop offered load x Zipf skew x
// {caches+shortcuts off, on} over a static loss-free radio bed. Fully
// seeded; the JSON report is diffed against bench/baselines/BENCH_serve.json
// in CI (schema-only under sanitizers).
//
// Method: every cell deploys the same seeded radio bed (no mobility, no
// scripted faults, republish disabled — the knee measured here comes from
// query airtime alone), settles the publication backlog, then serves one
// open-loop Poisson schedule through a fresh ServeEngine. Arrivals are
// scheduled independently of completions, so a saturated radio cannot slow
// the workload down — it can only queue, shed, or blow its deadline
// (EXPERIMENTS.md covers the open-loop methodology and the coordinated-
// omission argument for billing latency from the *scheduled* arrival).
//
// Per (zipf, config) the ladder's sustainable goodput is the best goodput
// among cells whose p99 time-to-answer still meets the deadline. The binary
// fails hard unless, on the skewed tier, caches+shortcuts sustain >= 1.5x
// the goodput of the off config at equal p99 acceptance and equal (+-1%)
// served-query recall — the executable form of the serving subsystem's
// acceptance criterion.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "obs/metrics.h"
#include "serve/engine.h"

using namespace hyperm;

namespace {

double g_trace_series_period_ms = 0.0;  // set from --trace-out in main

double Epsilon(bool paper) { return paper ? 0.05 : 0.15; }

struct ServeBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

std::unique_ptr<ServeBed> BuildBed(bool paper) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = paper ? 2000 : 400;
  data_options.dim = paper ? 128 : 32;
  data_options.num_families = 8;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  auto bed = std::make_unique<ServeBed>();
  bed->dataset = std::move(dataset).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = paper ? 50 : 16;
  assign_options.num_interest_classes = paper ? 16 : 8;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed->dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n",
                 assignment.status().ToString().c_str());
    std::exit(1);
  }
  bed->assignment = std::move(assignment).value();
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.retry.adaptive = true;
  // Static summaries: no TTL churn and no republish floods — the capacity
  // the ladder saturates is query airtime, nothing else. (The result
  // cache's epoch/TTL machinery is exercised by the serve unit tests.)
  options.channel.enabled = true;
  options.channel.field.field_size_m = paper ? 460.0 : 300.0;
  options.channel.field.radio_range_m = paper ? 72.0 : 60.0;
  options.channel.field.max_placement_attempts = 5000;
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = 0.0;
  options.trace_series_period_ms = g_trace_series_period_ms;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(bed->dataset, bed->assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    std::exit(1);
  }
  bed->network = std::move(network).value();
  return bed;
}

struct CellResult {
  serve::ServeStats stats;
  double recall = 0.0;         ///< mean recall over completed queries
  double cache_hit_rate = 0.0; ///< hits / admitted
  uint64_t shortcut_hits = 0;
  uint64_t shortcut_stale = 0;
  double p99() const { return stats.Quantile(0.99); }
};

CellResult RunCell(bool paper, double zipf_s, double offered_qps, bool serving_on,
                   const core::FlatIndex& oracle, double deadline_ms) {
  auto bed = BuildBed(paper);
  // Settle: drain the publication backlog so serving starts on idle radios.
  bed->network->AdvanceTo(bed->network->radio_channel()->DrainedAtMs() + 1.0);

  serve::ServeOptions options;
  options.workload.duration_ms = 20000.0;
  options.workload.offered_qps = offered_qps;
  options.workload.num_templates = 16;
  options.workload.zipf_s = zipf_s;
  options.workload.range_fraction = 0.75;
  options.range_epsilon = Epsilon(paper);
  options.knn_k = 10;
  options.deadline_ms = deadline_ms;
  options.cache.enabled = serving_on;
  // Static bed: coherence is the summary epoch's job, so the soft-state TTL
  // can span the window (repeat gaps at <= 4 qps dwarf a 1 s TTL).
  options.cache.ttl_ms = options.workload.duration_ms;
  options.shortcuts.enabled = serving_on;
  // Per-node backlog is the admission signal; a queue already holding a
  // deadline's worth of airtime cannot serve a new arrival in time.
  options.admission.max_backlog_ms = deadline_ms;
  options.admission.max_lag_ms = deadline_ms;

  const std::vector<serve::QueryTemplate> templates = serve::MakeTemplates(
      bed->dataset.items, options.workload, options.range_epsilon,
      options.knn_k);
  const std::vector<serve::Arrival> schedule =
      serve::GenerateArrivals(options.workload, bed->network->num_peers());

  // Ground truth per template from the flat-scan oracle.
  std::vector<std::vector<core::ItemId>> truth;
  truth.reserve(templates.size());
  for (const serve::QueryTemplate& t : templates) {
    truth.push_back(t.knn ? oracle.Knn(t.center, t.k)
                          : oracle.RangeSearch(t.center, t.epsilon));
  }

  std::vector<core::PrecisionRecall> results;
  serve::ServeEngine engine(bed->network.get(), options);
  Result<serve::ServeStats> stats = engine.Run(
      templates, schedule,
      [&](const serve::Arrival& arrival,
          const std::vector<core::ItemId>& items, bool /*cache_hit*/,
          double /*t2a_ms*/) {
        results.push_back(core::Evaluate(
            items, truth[static_cast<size_t>(arrival.template_id)]));
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "serve: %s\n", stats.status().ToString().c_str());
    std::exit(1);
  }
  CellResult cell;
  cell.stats = std::move(stats).value();
  cell.recall = results.empty() ? 0.0 : core::Summarize(results).mean_recall;
  cell.cache_hit_rate =
      cell.stats.admitted > 0
          ? static_cast<double>(cell.stats.cache_hits) /
                static_cast<double>(cell.stats.admitted)
          : 0.0;
  cell.shortcut_hits = engine.shortcuts().stats().hits;
  cell.shortcut_stale = engine.shortcuts().stats().stale;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  g_trace_series_period_ms = bench::ArmFlightRecorder(argc, argv);
  bench::PrintHeader("Serve",
                     "open-loop load x Zipf skew x caches/shortcuts sweep",
                     paper);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  bench::PhaseTimer sweep_timer;

  const std::vector<double> zipf = {0.5, 1.25};
  const std::vector<double> ladder = {0.5, 1.0, 2.0, 4.0};
  // ~2.5-4x the tier's uncongested p99 time-to-answer: tight enough that a
  // saturated rung blows it, loose enough that the base rung clears it.
  const double deadline_ms = paper ? 200000.0 : 10000.0;

  // The oracle depends only on the seeded dataset, identical across beds.
  const core::FlatIndex oracle(BuildBed(paper)->dataset);

  std::printf("%-5s %-4s %6s %9s %9s %9s %8s %8s %8s %8s\n", "zipf", "cfg",
              "qps", "goodput", "p50 ms", "p99 ms", "shed%", "cache%",
              "recall", "sc hits");

  // sustainable[zipf][on], recall of each config's base (unsaturated) rung.
  double sustainable[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  double base_recall[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (size_t z = 0; z < zipf.size(); ++z) {
    for (int on = 0; on <= 1; ++on) {
      for (size_t rung = 0; rung < ladder.size(); ++rung) {
        const CellResult cell = RunCell(paper, zipf[z], ladder[rung], on != 0,
                                        oracle, deadline_ms);
        std::printf(
            "%-5.2f %-4s %6.0f %9.1f %9.1f %9.1f %7.1f%% %7.1f%% %8.3f %8llu\n",
            zipf[z], on ? "on" : "off", ladder[rung],
            cell.stats.goodput_qps(), cell.stats.Quantile(0.50), cell.p99(),
            cell.stats.shed_rate() * 100.0, cell.cache_hit_rate * 100.0,
            cell.recall, static_cast<unsigned long long>(cell.shortcut_hits));
        char key[96];
        std::snprintf(key, sizeof(key), "benchsv.z%zu_%s_q%.0f_goodput", z,
                      on ? "on" : "off", ladder[rung]);
        reg.GetGauge(key).Set(cell.stats.goodput_qps());
        std::snprintf(key, sizeof(key), "benchsv.z%zu_%s_q%.0f_p99_ms", z,
                      on ? "on" : "off", ladder[rung]);
        reg.GetGauge(key).Set(cell.p99());
        std::snprintf(key, sizeof(key), "benchsv.z%zu_%s_q%.0f_shed_rate", z,
                      on ? "on" : "off", ladder[rung]);
        reg.GetGauge(key).Set(cell.stats.shed_rate());
        std::snprintf(key, sizeof(key), "benchsv.z%zu_%s_q%.0f_cache_hit_rate",
                      z, on ? "on" : "off", ladder[rung]);
        reg.GetGauge(key).Set(cell.cache_hit_rate);
        std::snprintf(key, sizeof(key), "benchsv.z%zu_%s_q%.0f_recall", z,
                      on ? "on" : "off", ladder[rung]);
        reg.GetGauge(key).Set(cell.recall);
        if (cell.stats.completed > 0 && cell.p99() <= deadline_ms) {
          sustainable[z][on] =
              std::max(sustainable[z][on], cell.stats.goodput_qps());
        }
        if (rung == 0) base_recall[z][on] = cell.recall;
      }
    }
  }

  const size_t skew = zipf.size() - 1;  // the enforcement tier
  const double sust_off = sustainable[skew][0];
  const double sust_on = sustainable[skew][1];
  const double speedup = sust_off > 0.0 ? sust_on / sust_off : 0.0;
  const double recall_delta =
      std::abs(base_recall[skew][1] - base_recall[skew][0]);
  std::printf("\nskewed tier (zipf %.2f), caches+shortcuts on vs off:\n",
              zipf[skew]);
  std::printf("  sustainable goodput (p99 <= %.0f ms): %.1f vs %.1f qps "
              "(%.2fx)\n",
              deadline_ms, sust_on, sust_off, speedup);
  std::printf("  served-query recall at the base rung: %.3f vs %.3f "
              "(|delta| %.4f)\n",
              base_recall[skew][1], base_recall[skew][0], recall_delta);

  reg.GetGauge("benchsv.sustainable_on_qps").Set(sust_on);
  reg.GetGauge("benchsv.sustainable_off_qps").Set(sust_off);
  reg.GetGauge("benchsv.goodput_speedup").Set(speedup);
  reg.GetGauge("benchsv.recall_delta").Set(recall_delta);
  reg.GetGauge("benchsv.sweep_wall_ms").Set(sweep_timer.ElapsedMs());
  std::printf("sweep wall time: %.1f s\n", sweep_timer.ElapsedMs() / 1000.0);

  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: caches+shortcuts sustain only %.2fx the goodput of "
                 "the off config (need >= 1.5x)\n",
                 speedup);
    return 1;
  }
  if (recall_delta > 0.01) {
    std::fprintf(stderr,
                 "FAIL: served-query recall %.3f drifted more than 1%% from "
                 "the off config's %.3f\n",
                 base_recall[skew][1], base_recall[skew][0]);
    return 1;
  }
  std::printf(">=1.5x sustainable goodput at equal p99 and recall: yes\n");

  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_serve");
  return 0;
}
