// Ablation: overlay substrate for the 1-dimensional wavelet levels.
//
// Hyper-M is overlay-agnostic (Section 5); the A and D0 subspaces are
// 1-dimensional, where a Chord-style ring with finger tables routes in
// O(log N) instead of CAN's O(N) neighbour walk. This ablation swaps the
// 1-D layers' substrate and compares construction cost, query cost and
// retrieval quality.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Ablation", "overlay substrate for 1-D layers (CAN vs ring)",
                     paper);

  const struct {
    core::OverlayKind kind;
    const char* name;
  } kKinds[] = {
      {core::OverlayKind::kCan, "CAN everywhere"},
      {core::OverlayKind::kRingAndCan, "ring for 1-D"},
      {core::OverlayKind::kTree, "BSP tree"},
  };

  std::printf("%-16s %14s %14s %16s %12s\n", "substrate", "insert hops",
              "query hops", "range recall", "knn recall");
  for (const auto& entry : kKinds) {
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = 10;
    options.overlay_kind = entry.kind;
    auto bed = bench::BuildEffectivenessBed(paper, options);
    const core::FlatIndex oracle(bed->dataset);
    const uint64_t insert_hops =
        bed->network->stats().hops(sim::TrafficClass::kInsert) +
        bed->network->stats().hops(sim::TrafficClass::kReplicate);

    bed->network->mutable_stats().Reset();
    std::vector<core::PrecisionRecall> range, knn;
    const int num_queries = 25;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      const double eps = oracle.KnnRadius(query, 20);
      Result<std::vector<core::ItemId>> full =
          bed->network->RangeQuery(query, eps, q % 50, /*max_peers=*/-1);
      core::KnnOptions knn_options;
      Result<std::vector<core::ItemId>> fetched =
          bed->network->KnnQuery(query, 10, knn_options, q % 50);
      if (!full.ok() || !fetched.ok()) {
        std::fprintf(stderr, "query failed\n");
        return 1;
      }
      range.push_back(core::Evaluate(*full, oracle.RangeSearch(query, eps)));
      knn.push_back(core::Evaluate(*fetched, oracle.Knn(query, 10)));
    }
    const uint64_t query_hops = bed->network->stats().hops(sim::TrafficClass::kQuery);
    std::printf("%-16s %14llu %14llu %16.3f %12.3f\n", entry.name,
                static_cast<unsigned long long>(insert_hops),
                static_cast<unsigned long long>(query_hops),
                core::Summarize(range).mean_recall, core::Summarize(knn).mean_recall);
  }
  std::printf("\nexpected shape: identical retrieval quality (the framework is\n"
              "overlay-agnostic) with cheaper routing on the ring's 1-D layers\n");
  return 0;
}
