// Figure 9: data distribution among nodes under deliberately skewed data.
//
// "We cluster our original data and select only a fixed number of clusters
// (two to five in our experiments). We then apply the wavelet transform to
// the items in each cluster, and insert them into their respective overlays.
// Figure 9 shows the number of items on a peer in each of the possible
// overlays, as well as the average number of peers holding the data."
//
// Expected shape: the original-space (512-d) CAN and the approximation-only
// overlay concentrate the skewed data on very few nodes; adding detail
// overlays spreads it out because the wavelet subspaces are orthogonal and
// place the same item independently.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/baseline.h"
#include "hyperm/network.h"
#include "overlay/storage_metrics.h"

using namespace hyperm;

namespace {

void PrintRow(const std::string& name, const overlay::LoadSummary& d, int nodes) {
  std::printf("%-12s %14d/%-3d %12d %16.1f %8.3f\n", name.c_str(), d.holders, nodes,
              d.max_items, d.mean_items_on_holders, d.gini);
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = 100;
  const int items_total = paper ? 100000 : 20000;
  const int dim = 512;
  bench::PrintHeader("Figure 9", "data distribution among nodes (skewed data)", paper);

  Rng data_rng(404);
  data::MarkovOptions data_options;
  data_options.count = items_total;
  data_options.dim = dim;
  data_options.num_families = 25;
  Result<data::Dataset> full = data::GenerateMarkov(data_options, data_rng);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }

  for (int keep : {2, 3, 5}) {
    // Deliberate skew: keep only `keep` of 25 interest clusters.
    Rng skew_rng(7);
    Result<std::vector<int>> kept = data::SelectSkewedSubset(*full, keep, 25, skew_rng);
    if (!kept.ok()) {
      std::fprintf(stderr, "%s\n", kept.status().ToString().c_str());
      return 1;
    }
    data::Dataset skewed;
    for (int index : *kept) {
      skewed.items.push_back(full->items[static_cast<size_t>(index)]);
      skewed.labels.push_back(full->labels[static_cast<size_t>(index)]);
    }
    Rng assign_rng(5);
    Result<data::PeerAssignment> assignment =
        data::AssignUniform(skewed, nodes, assign_rng);
    if (!assignment.ok()) {
      std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
      return 1;
    }

    std::printf("\n--- skew: %d of 25 interest clusters kept (%zu items) ---\n", keep,
                skewed.size());
    std::printf("%-12s %18s %12s %16s %8s\n", "overlay", "peers holding",
                "max items", "avg items/holder", "gini");

    // Hyper-M with 6 layers so the per-overlay trend is visible.
    Rng rng(42);
    core::HyperMOptions options;
    options.num_layers = 6;
    options.clusters_per_peer = 10;
    Result<std::unique_ptr<core::HyperMNetwork>> net =
        core::HyperMNetwork::Build(skewed, *assignment, options, rng);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    for (int layer = 0; layer < (*net)->num_layers(); ++layer) {
      PrintRow((*net)->level(layer).name(),
               overlay::SummarizeLoad((*net)->overlay(layer).StorageDistribution()),
               nodes);
    }

    // Original-space CAN baseline (per-item insertion, 512-d).
    Rng baseline_rng(43);
    Result<std::unique_ptr<core::CanItemBaseline>> baseline =
        core::CanItemBaseline::Build(skewed, *assignment, {}, baseline_rng);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    PrintRow("CAN-512d",
             overlay::SummarizeLoad((*baseline)->overlay().StorageDistribution()),
             nodes);
  }
  std::printf("\nexpected shape: CAN-512d and the A-only overlay concentrate the\n"
              "skewed data on few nodes; detail overlays disperse it (lower gini)\n");
  return 0;
}
