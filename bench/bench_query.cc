// Query-effectiveness regression bench: range + k-NN recall, precision and
// simulated latency on the Markov dataset against the exact oracle. Fully
// seeded, so every number it reports is deterministic; the JSON report is
// diffed against bench/baselines/BENCH_query.json in CI (see check_report)
// to catch silent effectiveness or traffic regressions.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "obs/metrics.h"

using namespace hyperm;

namespace {

struct QueryBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

std::unique_ptr<QueryBed> BuildBed(bool paper) {
  Rng rng(606);
  data::MarkovOptions data_options;
  data_options.count = paper ? 5000 : 800;
  data_options.dim = paper ? 512 : 64;
  data_options.num_families = 8;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  auto bed = std::make_unique<QueryBed>();
  bed->dataset = std::move(dataset).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = paper ? 100 : 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = paper ? 20 : 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed->dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n", assignment.status().ToString().c_str());
    std::exit(1);
  }
  bed->assignment = std::move(assignment).value();
  core::HyperMOptions options;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(bed->dataset, bed->assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    std::exit(1);
  }
  bed->network = std::move(network).value();
  return bed;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Regression", "range + k-NN effectiveness and latency vs baseline",
                     paper);
  auto bed = BuildBed(paper);
  const core::FlatIndex oracle(bed->dataset);
  const size_t n = bed->dataset.size();
  const int num_peers = bed->network->num_peers();
  std::printf("items=%zu dim=%zu peers=%d layers=%d\n\n", n, bed->dataset.dim(),
              num_peers, bed->network->num_layers());

  const int num_queries = 15;  // 15 range + 15 k-NN

  std::vector<core::PrecisionRecall> range_results;
  double range_latency_ms = 0.0;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& query = bed->dataset.items[(static_cast<size_t>(q) * 173 + 19) % n];
    const double eps = oracle.KnnRadius(query, 25);
    core::RangeQueryInfo info;
    Result<std::vector<core::ItemId>> retrieved = bed->network->RangeQuery(
        query, eps, /*querying_peer=*/q % num_peers, -1, &info);
    if (!retrieved.ok()) {
      std::fprintf(stderr, "%s\n", retrieved.status().ToString().c_str());
      return 1;
    }
    range_results.push_back(
        core::Evaluate(*retrieved, oracle.RangeSearch(query, eps)));
    range_latency_ms += info.latency_ms;
  }
  range_latency_ms /= num_queries;
  const core::EffectivenessSummary range = core::Summarize(range_results);

  std::vector<core::PrecisionRecall> knn_results;
  double knn_latency_ms = 0.0;
  core::KnnOptions knn_options;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& query = bed->dataset.items[(static_cast<size_t>(q) * 311 + 7) % n];
    core::KnnQueryInfo info;
    Result<std::vector<core::ItemId>> retrieved = bed->network->KnnQuery(
        query, /*k=*/10, knn_options, /*querying_peer=*/q % num_peers, &info);
    if (!retrieved.ok()) {
      std::fprintf(stderr, "%s\n", retrieved.status().ToString().c_str());
      return 1;
    }
    knn_results.push_back(core::Evaluate(*retrieved, oracle.Knn(query, 10)));
    knn_latency_ms += info.range.latency_ms;
  }
  knn_latency_ms /= num_queries;
  const core::EffectivenessSummary knn = core::Summarize(knn_results);

  std::printf("%-8s %10s %10s %14s\n", "query", "recall", "precision",
              "latency (ms)");
  std::printf("%-8s %10.3f %10.3f %14.1f\n", "range", range.mean_recall,
              range.mean_precision, range_latency_ms);
  std::printf("%-8s %10.3f %10.3f %14.1f\n", "knn", knn.mean_recall,
              knn.mean_precision, knn_latency_ms);

  // The regression surface: deterministic gauges diffed against the baseline
  // (5% tolerance) alongside every counter the run recorded (10%).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("benchq.range_recall").Set(range.mean_recall);
  reg.GetGauge("benchq.range_precision").Set(range.mean_precision);
  reg.GetGauge("benchq.range_latency_ms").Set(range_latency_ms);
  reg.GetGauge("benchq.knn_recall").Set(knn.mean_recall);
  reg.GetGauge("benchq.knn_precision").Set(knn.mean_precision);
  reg.GetGauge("benchq.knn_latency_ms").Set(knn_latency_ms);

  bench::WriteBenchReport(argc, argv, "bench_query");
  return 0;
}
