// Figure 8a: cluster replication overhead.
//
// "Figure 8a shows the average number of hops for different cluster sizes.
// As expected, if the clustering is finer, the number of hops approaches the
// no-replication standard [because] a smaller cluster has less chances of
// overlapping other zones than the one its centroid is located in."
//
// For each clusters-per-peer setting we build a full Hyper-M deployment and
// report, per cluster publication: greedy routing hops (the no-replication
// standard) and the extra replication hops caused by zone overlap.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/network.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = 100;
  const int items_per_node = paper ? 1000 : 500;
  const int dim = 512;
  bench::PrintHeader("Figure 8a", "cluster replication overhead (Markov 512-d)", paper);
  std::printf("nodes=%d items/node=%d dim=%d layers=4\n\n", nodes, items_per_node, dim);

  Rng data_rng(404);
  data::MarkovOptions data_options;
  data_options.count = nodes * items_per_node;
  data_options.dim = dim;
  data_options.num_families = 25;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, data_rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  data::AssignmentOptions assign_options;
  assign_options.num_peers = nodes;
  assign_options.num_interest_classes = 25;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, data_rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  std::printf("%-14s %12s %16s %16s %12s\n", "clusters/peer", "route/pub",
              "replicate/pub", "total/pub", "overhead");
  for (int clusters : {2, 5, 10, 20, 50}) {
    Rng rng(42);
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = clusters;
    Result<std::unique_ptr<core::HyperMNetwork>> net =
        core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    const sim::NetworkStats& stats = (*net)->stats();
    const double pubs = static_cast<double>(nodes) * clusters * options.num_layers;
    const double route = static_cast<double>(stats.hops(sim::TrafficClass::kInsert));
    const double repl = static_cast<double>(stats.hops(sim::TrafficClass::kReplicate));
    std::printf("%-14d %12.2f %16.2f %16.2f %11.1f%%\n", clusters, route / pubs,
                repl / pubs, (route + repl) / pubs, 100.0 * repl / route);
  }
  std::printf("\nexpected shape: replication overhead shrinks as clustering gets finer\n");
  bench::WriteBenchReport(argc, argv, "fig8a_replication",
                          {{"nodes", std::to_string(nodes)},
                           {"items_per_node", std::to_string(items_per_node)}});
  return 0;
}
