// Figure 10b: effectiveness of k-NN queries.
//
// "Figure 10b shows that the system performs well, balancing precision and
// recall at over 50%... using ten clusters instead of five almost doubles
// the performance, but using twenty instead of ten only increases it
// slightly." We sweep the clusters-per-peer granularity; per the paper, the
// min/max error bounds come from varying k.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Figure 10b", "k-NN precision/recall vs clusters per peer",
                     paper);

  // Two retrieval variants: the raw Fig. 5 fetched set (C trades precision
  // for recall) and the balanced top-k truncation of the same merge (the
  // paper's balanced "over 50%" operating point).
  const int num_queries = 25;
  std::printf("%-14s %24s %24s %12s\n", "clusters/peer", "precision mean[min..max]",
              "recall mean[min..max]", "balanced@k");
  for (int clusters : {5, 10, 20}) {
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = clusters;
    auto bed = bench::BuildEffectivenessBed(paper, options);
    const core::FlatIndex oracle(bed->dataset);

    std::vector<core::PrecisionRecall> results, truncated_results;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      for (int k : {5, 10, 20}) {
        core::KnnOptions knn_options;
        knn_options.c = 1.5;
        Result<std::vector<core::ItemId>> fetched =
            bed->network->KnnQuery(query, k, knn_options, q % 50);
        knn_options.truncate_to_k = true;
        Result<std::vector<core::ItemId>> topk =
            bed->network->KnnQuery(query, k, knn_options, q % 50);
        if (!fetched.ok() || !topk.ok()) {
          std::fprintf(stderr, "knn query failed\n");
          return 1;
        }
        const std::vector<core::ItemId> truth = oracle.Knn(query, k);
        results.push_back(core::Evaluate(*fetched, truth));
        truncated_results.push_back(core::Evaluate(*topk, truth));
      }
    }
    const core::EffectivenessSummary s = core::Summarize(results);
    const core::EffectivenessSummary t = core::Summarize(truncated_results);
    std::printf("%-14d    %6.3f [%.2f..%.2f]       %6.3f [%.2f..%.2f] %12.3f\n",
                clusters, s.mean_precision, s.min_precision, s.max_precision,
                s.mean_recall, s.min_recall, s.max_recall, t.mean_recall);
  }
  std::printf("\nexpected shape: quality jumps from 5 to 10 clusters, then nearly\n"
              "saturates at 20 (the paper's diminishing-returns observation)\n");
  bench::WriteBenchReport(argc, argv, "fig10b_knn");
  return 0;
}
