// Figure 10c: recall loss for documents inserted after overlay creation.
//
// "We have evaluated the impact of inserting documents after the creation of
// the overlay. Figure 10c shows the loss in recall versus the number of new
// documents... even if we insert as much as 45% new documents (3600 new data
// items, versus 8400 existing), the recall loses only up to 33%."
//
// New items join a peer's local store without republishing summaries, so the
// published clusters go stale. We measure range-query recall over the
// combined corpus as the post-creation batch grows.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Figure 10c", "recall loss vs post-creation insertions", paper);

  // Initial corpus: 8400 items at paper scale (700 objects), 2940 otherwise.
  const int initial_objects = paper ? 700 : 245;
  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  auto bed = bench::BuildEffectivenessBed(paper, options, /*seed=*/606,
                                          /*num_objects_override=*/initial_objects);
  std::printf("initial items=%zu (nodes=50)\n\n", bed->dataset.size());

  // Fresh objects to trickle in after creation (45% of the initial corpus).
  Rng extra_rng(777);
  data::HistogramOptions extra_options;
  extra_options.num_objects = (initial_objects * 45) / 100;
  extra_options.views_per_object = 12;
  extra_options.dim = 64;
  Result<data::Dataset> extra = data::GenerateHistograms(extra_options, extra_rng);
  if (!extra.ok()) {
    std::fprintf(stderr, "%s\n", extra.status().ToString().c_str());
    return 1;
  }

  // Queries run under a realistic contact budget (16 of 50 peers — the
  // fig10a knee); the loss is measured against the pre-churn recall at the
  // same budget.
  const int kContactBudget = 16;
  data::Dataset combined = bed->dataset;

  // Pre-churn baseline recall at the same budget.
  double base_recall;
  {
    const core::FlatIndex oracle(combined);
    std::vector<core::PrecisionRecall> results;
    for (int q = 0; q < 30; ++q) {
      const size_t index = (static_cast<size_t>(q) * 97 + 7) % combined.items.size();
      const Vector& query = combined.items[index];
      const double eps = oracle.KnnRadius(query, 20);
      Result<std::vector<core::ItemId>> retrieved =
          bed->network->RangeQuery(query, eps, q % 50, kContactBudget);
      if (!retrieved.ok()) {
        std::fprintf(stderr, "%s\n", retrieved.status().ToString().c_str());
        return 1;
      }
      results.push_back(core::Evaluate(*retrieved, oracle.RangeSearch(query, eps)));
    }
    base_recall = core::Summarize(results).mean_recall;
  }
  std::printf("pre-churn recall at a %d-peer contact budget: %.3f\n\n",
              kContactBudget, base_recall);

  // Two columns separate the two loss sources: the contact budget (ranking
  // quality under scattered placement) and stale summaries (visible at full
  // contact, where fresh summaries guarantee recall 1).
  auto measure = [&](const data::Dataset& corpus, double* at_budget, double* full) {
    const core::FlatIndex oracle(corpus);
    std::vector<core::PrecisionRecall> budget_results, full_results;
    for (int q = 0; q < 30; ++q) {
      // Fixed workload over the growing corpus: queries sample the whole
      // collection, so the share of unpublished ground-truth items grows
      // with the churn (the paper's gradual loss curve).
      const size_t index = (static_cast<size_t>(q) * 14657 + 31) % corpus.items.size();
      const Vector& query = corpus.items[index];
      const double eps = oracle.KnnRadius(query, 20);
      const std::vector<core::ItemId> truth = oracle.RangeSearch(query, eps);
      Result<std::vector<core::ItemId>> budget =
          bed->network->RangeQuery(query, eps, q % 50, kContactBudget);
      Result<std::vector<core::ItemId>> everyone =
          bed->network->RangeQuery(query, eps, q % 50, /*max_peers=*/-1);
      if (!budget.ok() || !everyone.ok()) std::exit(1);
      budget_results.push_back(core::Evaluate(*budget, truth));
      full_results.push_back(core::Evaluate(*everyone, truth));
    }
    *at_budget = core::Summarize(budget_results).mean_recall;
    *full = core::Summarize(full_results).mean_recall;
  };

  std::printf("%-12s %10s %14s %14s %12s\n", "new items", "new/old",
              "recall@budget", "recall loss", "recall@all");
  size_t cursor = 0;
  Rng placement(13);
  const size_t step = extra->items.size() / 6;
  for (int stage = 1; stage <= 6; ++stage) {
    // Insert the next batch without republication.
    const size_t until = stage == 6 ? extra->items.size() : cursor + step;
    for (; cursor < until; ++cursor) {
      const core::ItemId id = static_cast<core::ItemId>(combined.items.size());
      combined.items.push_back(extra->items[cursor]);
      combined.labels.push_back(-1);
      bed->network->AddItemWithoutRepublish(
          static_cast<int>(placement.NextIndex(50)), id, extra->items[cursor]);
    }
    double at_budget = 0.0, full = 0.0;
    measure(combined, &at_budget, &full);
    std::printf("%-12zu %9.1f%% %14.3f %13.1f%% %12.3f\n", cursor,
                100.0 * static_cast<double>(cursor) / bed->dataset.size(), at_budget,
                100.0 * (base_recall - at_budget) / base_recall, full);
  }

  // Extension: the repair action. Every peer re-clusters and republishes,
  // which restores fresh summaries — and with them the full-contact
  // guarantee — for the whole grown collection.
  Rng republish_rng(99);
  for (int p = 0; p < bed->network->num_peers(); ++p) {
    if (!bed->network->RepublishPeer(p, republish_rng).ok()) return 1;
  }
  double at_budget = 0.0, full = 0.0;
  measure(combined, &at_budget, &full);
  std::printf("%-12s %10s %14.3f %13.1f%% %12.3f\n", "(republish)", "-", at_budget,
              100.0 * (base_recall - at_budget) / base_recall, full);

  std::printf("\nexpected shape: graceful budget-recall degradation — at ~45%% new\n"
              "items the loss stays bounded (paper: at most ~33%%). Full-contact\n"
              "recall isolates the staleness component; republication returns it\n"
              "to 1.0 (the Theorem 4.1 guarantee over the grown corpus).\n");
  bench::WriteBenchReport(argc, argv, "fig10c_post_insertion");
  return 0;
}
