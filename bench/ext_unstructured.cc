// Extension: structured vs unstructured substrate.
//
// Hyper-M's home platform (BestPeer, Section 2) can run either structured or
// unstructured overlays. This bench publishes identical cluster summaries
// into a CAN and into a Gnutella-style gossip overlay and compares the two
// regimes: the unstructured network publishes for free but pays per query
// (flooding) and loses completeness as soon as the TTL is smaller than the
// graph diameter — the concrete argument for the paper's structured choice.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "can/can_overlay.h"
#include "overlay/gossip_overlay.h"

using namespace hyperm;

namespace {

struct Workload {
  std::vector<overlay::PublishedCluster> clusters;
  std::vector<geom::Sphere> queries;
};

Workload MakeWorkload(Rng& rng) {
  Workload w;
  for (uint64_t id = 1; id <= 400; ++id) {
    overlay::PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.01, 0.08)};
    c.owner_peer = static_cast<int>(id % 64);
    c.items = 5;
    c.cluster_id = id;
    w.clusters.push_back(c);
  }
  for (int q = 0; q < 100; ++q) {
    w.queries.push_back(
        geom::Sphere{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.02, 0.12)});
  }
  return w;
}

void Evaluate(const char* name, overlay::Overlay& overlay,
              const sim::NetworkStats& stats, const Workload& workload, Rng& rng) {
  const uint64_t build_hops = stats.total_hops();
  for (const overlay::PublishedCluster& c : workload.clusters) {
    if (!overlay.Insert(c, static_cast<overlay::NodeId>(
                               rng.NextIndex(static_cast<uint64_t>(
                                   overlay.num_nodes()))))
             .ok()) {
      std::exit(1);
    }
  }
  const uint64_t insert_hops = stats.total_hops() - build_hops;

  int expected = 0, found = 0;
  uint64_t query_start = stats.total_hops();
  for (const geom::Sphere& query : workload.queries) {
    Result<overlay::RangeQueryResult> result = overlay.RangeQuery(query, 0);
    if (!result.ok()) std::exit(1);
    std::set<uint64_t> ids;
    for (const auto& c : result->matches) ids.insert(c.cluster_id);
    for (const auto& c : workload.clusters) {
      if (!c.sphere.Intersects(query)) continue;
      ++expected;
      if (ids.count(c.cluster_id)) ++found;
    }
  }
  const uint64_t query_hops = stats.total_hops() - query_start;
  std::printf("%-22s %12llu %12llu %12.3f\n", name,
              static_cast<unsigned long long>(insert_hops),
              static_cast<unsigned long long>(query_hops),
              expected == 0 ? 1.0 : static_cast<double>(found) / expected);
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Extension", "structured (CAN) vs unstructured (gossip)", paper);
  const int nodes = 64;

  Rng workload_rng(11);
  const Workload workload = MakeWorkload(workload_rng);
  std::printf("%d nodes, %zu summaries, %zu range queries\n\n", nodes,
              workload.clusters.size(), workload.queries.size());
  std::printf("%-22s %12s %12s %12s\n", "substrate", "insert hops", "query hops",
              "recall");

  {
    sim::NetworkStats stats;
    Rng rng(21);
    auto can = can::CanOverlay::Build(2, nodes, &stats, rng).value();
    Rng op_rng(31);
    Evaluate("CAN", *can, stats, workload, op_rng);
  }
  for (int ttl : {2, 4, -1}) {
    sim::NetworkStats stats;
    Rng rng(21);
    auto gossip = overlay::GossipOverlay::Build(2, nodes, 4, ttl, &stats, rng).value();
    Rng op_rng(31);
    char name[32];
    std::snprintf(name, sizeof(name), "gossip (ttl=%s)",
                  ttl < 0 ? "inf" : std::to_string(ttl).c_str());
    Evaluate(name, *gossip, stats, workload, op_rng);
  }

  std::printf("\nexpected shape: gossip publishes for free but floods per query;\n"
              "bounded TTLs lose recall, an unbounded flood touches every node.\n"
              "CAN pays once at publication and answers from the right zones.\n");
  return 0;
}
