// Ablation: the k-NN heuristic's operating knobs (DESIGN.md).
//
// Fig. 5 leaves two knobs open besides C: how many peers P to contact (here
// capped at max_peers) and whether to truncate the merged result to k. This
// sweep maps the precision/recall surface so a deployment can pick its
// operating point — the paper's balanced "over 50%" corresponds to
// truncation, while completeness seekers lift the cap and skip it.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Ablation", "k-NN knobs: peer cap x truncation (C=1.5, k=10)",
                     paper);

  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  auto bed = bench::BuildEffectivenessBed(paper, options);
  const core::FlatIndex oracle(bed->dataset);

  const int num_queries = 40;
  const int k = 10;
  std::printf("%-10s %-10s %10s %10s %10s %14s\n", "max_peers", "truncate",
              "precision", "recall", "F1", "items fetched");
  for (int max_peers : {2, 5, 10, 1 << 20}) {
    for (bool truncate : {false, true}) {
      core::KnnOptions knn_options;
      knn_options.c = 1.5;
      knn_options.max_peers = max_peers;
      knn_options.truncate_to_k = truncate;
      std::vector<core::PrecisionRecall> results;
      double fetched_total = 0.0;
      for (int q = 0; q < num_queries; ++q) {
        const size_t index = (static_cast<size_t>(q) * 211 + 5) % bed->dataset.size();
        const Vector& query = bed->dataset.items[index];
        Result<std::vector<core::ItemId>> fetched =
            bed->network->KnnQuery(query, k, knn_options, q % 50);
        if (!fetched.ok()) {
          std::fprintf(stderr, "%s\n", fetched.status().ToString().c_str());
          return 1;
        }
        fetched_total += static_cast<double>(fetched->size());
        results.push_back(core::Evaluate(*fetched, oracle.Knn(query, k)));
      }
      const core::EffectivenessSummary s = core::Summarize(results);
      const double f1 =
          (s.mean_precision + s.mean_recall) > 0.0
              ? 2.0 * s.mean_precision * s.mean_recall /
                    (s.mean_precision + s.mean_recall)
              : 0.0;
      std::printf("%-10d %-10s %10.3f %10.3f %10.3f %14.1f\n",
                  max_peers >= (1 << 20) ? -1 : max_peers,
                  truncate ? "yes" : "no", s.mean_precision, s.mean_recall, f1,
                  fetched_total / num_queries);
    }
  }
  std::printf("\nexpected shape: truncation converts surplus fetches into\n"
              "precision; lifting the peer cap buys recall. The F1-optimal\n"
              "operating point pairs a moderate cap with truncation.\n");
  return 0;
}
