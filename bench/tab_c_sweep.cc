// Section 6.1 (text): the C knob sweep.
//
// "Our experiments show that we obtain a 14.51% increase in recall when C is
// 1.5 (50% more data items retrieved) but also a drop of 21.05% in
// precision. Increasing C further to 2 adds an additional 4.23% to recall
// and subtracts 6.67% from precision."
//
// We reproduce the table: mean k-NN precision/recall at C in {1, 1.5, 2} and
// the relative deltas between consecutive settings.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Section 6.1 table", "the C recall/precision trade-off", paper);

  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  auto bed = bench::BuildEffectivenessBed(paper, options);
  const core::FlatIndex oracle(bed->dataset);

  const int num_queries = 40;
  const int k = 10;
  std::printf("%-6s %10s %10s %14s %16s %16s\n", "C", "precision", "recall",
              "items fetched", "d recall", "d precision");
  double prev_precision = 0.0, prev_recall = 0.0;
  bool first = true;
  for (double c : {1.0, 1.5, 2.0}) {
    core::KnnOptions knn_options;
    knn_options.c = c;
    std::vector<core::PrecisionRecall> results;
    double fetched_total = 0.0;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 211 + 5) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      Result<std::vector<core::ItemId>> fetched =
          bed->network->KnnQuery(query, k, knn_options, q % 50);
      if (!fetched.ok()) {
        std::fprintf(stderr, "%s\n", fetched.status().ToString().c_str());
        return 1;
      }
      fetched_total += static_cast<double>(fetched->size());
      results.push_back(core::Evaluate(*fetched, oracle.Knn(query, k)));
    }
    const core::EffectivenessSummary s = core::Summarize(results);
    if (first) {
      std::printf("%-6.1f %10.3f %10.3f %14.1f %16s %16s\n", c, s.mean_precision,
                  s.mean_recall, fetched_total / num_queries, "-", "-");
      first = false;
    } else {
      std::printf("%-6.1f %10.3f %10.3f %14.1f %+15.1f%% %+15.1f%%\n", c,
                  s.mean_precision, s.mean_recall, fetched_total / num_queries,
                  100.0 * (s.mean_recall - prev_recall) / prev_recall,
                  100.0 * (s.mean_precision - prev_precision) / prev_precision);
    }
    prev_precision = s.mean_precision;
    prev_recall = s.mean_recall;
  }
  std::printf("\nexpected shape: raising C buys recall and costs precision, with\n"
              "diminishing returns from 1.5 to 2 (paper: +14.5%%/-21.1%% then\n"
              "+4.2%%/-6.7%%)\n");
  return 0;
}
