// Supernode-backbone sweep: Bloom-digest query pruning vs digest-less CDS
// flooding, across digest sizes and mobility-driven churn. Fully seeded; the
// JSON report is diffed against bench/baselines/BENCH_backbone.json in CI.
//
// Method: every cell deploys the same seeded radio bed with the backbone
// enabled and one digest geometry (digest_bits == 0 is the digest-less
// comparator: the CDS walk still runs but descends into every domain). The
// static-field cells are the fault-free tier; mobile cells add churn, where
// probes landing on a just-changed radio graph fail soft to full CAN
// flooding. Each cell reports measured digest FPR (fresh empty descents /
// fresh prune opportunities), per-probe domain descents, query-class
// airtime, and recall against a flat-scan oracle.
//
// The binary fails hard unless, on the fault-free tier, the largest digest
// (a) descends into at least 2x fewer domains per served probe than the
// digest-less walk and (b) keeps recall within +-1% of it — the executable
// form of the backbone's acceptance criterion.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "backbone/manager.h"
#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "obs/metrics.h"

using namespace hyperm;

namespace {



double g_trace_series_period_ms = 0.0;  // set from --trace-out in main

/// Query threshold per tier. Queries center on stored items, so epsilon
/// controls how many interest classes — and hence domains — each query's
/// Theorem 4.1 spheres brush against; both tiers aim for class-selective
/// queries (recall is measured against a flat-scan oracle at the same
/// epsilon, so the digest-vs-digestless comparison is fair at any value).
double Epsilon(bool paper) { return paper ? 0.05 : 0.15; }

struct BackboneBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

std::unique_ptr<BackboneBed> BuildBed(bool paper, double speed_m_per_s,
                                      int digest_bits) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = paper ? 2000 : 400;
  data_options.dim = paper ? 128 : 32;
  data_options.num_families = 8;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  auto bed = std::make_unique<BackboneBed>();
  bed->dataset = std::move(dataset).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = paper ? 50 : 16;
  // Narrow interests (the paper's "limited set of interests" skew, Section
  // 5.1): each class lands on few peers, so a radio domain of 3-6 members
  // covers a minority of the classes and most (query, domain) pairs are
  // provably empty at some level — the headroom digest pruning feeds on.
  assign_options.num_interest_classes = paper ? 16 : 8;
  assign_options.min_peers_per_class = paper ? 3 : 2;
  assign_options.max_peers_per_class = paper ? 4 : 3;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed->dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n",
                 assignment.status().ToString().c_str());
    std::exit(1);
  }
  bed->assignment = std::move(assignment).value();
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.retry.adaptive = true;
  options.net.summary_ttl_ms = 1500.0;
  options.net.republish_period_ms = 400.0;
  options.channel.enabled = true;
  // The bench_partition radio field: sparse enough that mobility reshapes
  // connectivity, connected at rest.
  options.channel.field.field_size_m = paper ? 460.0 : 300.0;
  options.channel.field.radio_range_m = paper ? 72.0 : 60.0;
  options.channel.field.max_placement_attempts = 5000;
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = speed_m_per_s;
  options.backbone.enabled = true;
  options.backbone.digest_bits = digest_bits;
  options.backbone.digest_cells_per_axis = 24;
  options.trace_series_period_ms = g_trace_series_period_ms;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(bed->dataset, bed->assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    std::exit(1);
  }
  bed->network = std::move(network).value();
  return bed;
}

struct CellResult {
  double recall = 0.0;
  double descends_per_probe = 0.0;  ///< domains descended per served probe
  double fpr = 0.0;                 ///< measured digest false-positive rate
  double query_kb = 0.0;            ///< query-class airtime over the batch
  double digest_kb = 0.0;           ///< digest-exchange airtime, total
  uint64_t served = 0;
  uint64_t fallbacks = 0;
  uint64_t pruned = 0;
  uint64_t leaf_skips = 0;
};

CellResult RunCell(bool paper, double speed_m_per_s, int digest_bits,
                   int num_queries, const core::FlatIndex& oracle) {
  auto bed = BuildBed(paper, speed_m_per_s, digest_bits);
  const backbone::BackboneManager* manager = bed->network->backbone();
  const size_t n = bed->dataset.size();
  const int num_peers = bed->network->num_peers();

  // Settle: drain the publication backlog, then give the maintenance loop
  // time to collect member reports and complete + exchange every digest.
  double t = bed->network->radio_channel()->DrainedAtMs() + 1.0;
  bed->network->AdvanceTo(t);
  t += 1200.0;
  bed->network->AdvanceTo(t);

  const backbone::BackboneCounters before = manager->counters();
  const uint64_t query_bytes_before =
      bed->network->stats().bytes(sim::TrafficClass::kQuery);

  std::vector<core::PrecisionRecall> results;
  for (int q = 0; q < num_queries; ++q) {
    if (speed_m_per_s > 0.0) {
      // Churn tier: let the field move between queries.
      t += 300.0;
      bed->network->AdvanceTo(t);
    }
    const Vector& center = bed->dataset.items[(static_cast<size_t>(q) * 17) % n];
    Result<std::vector<core::ItemId>> r = bed->network->RangeQuery(
        center, Epsilon(paper), /*querying_peer=*/q % num_peers,
        /*max_peers_contacted=*/-1);
    if (!r.ok()) {
      std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    results.push_back(core::Evaluate(*r, oracle.RangeSearch(center, Epsilon(paper))));
  }

  const backbone::BackboneCounters& after = manager->counters();
  CellResult cell;
  cell.recall = core::Summarize(results).mean_recall;
  cell.served = after.probes_served - before.probes_served;
  cell.fallbacks = after.probes_fallback - before.probes_fallback;
  cell.pruned = after.domains_pruned - before.domains_pruned;
  cell.leaf_skips = after.leaf_skips - before.leaf_skips;
  const uint64_t descended = after.domains_descended - before.domains_descended;
  cell.descends_per_probe =
      cell.served > 0 ? static_cast<double>(descended) /
                            static_cast<double>(cell.served)
                      : 0.0;
  const uint64_t empty = after.descends_empty - before.descends_empty;
  // A fresh descend that finds nothing is a measured digest false positive;
  // pruned domains are provably true negatives (the digest has no false
  // dismissals for intersecting spheres).
  const uint64_t negatives = empty + cell.pruned;
  cell.fpr = negatives > 0
                 ? static_cast<double>(empty) / static_cast<double>(negatives)
                 : 0.0;
  cell.query_kb =
      static_cast<double>(bed->network->stats().bytes(sim::TrafficClass::kQuery) -
                          query_bytes_before) /
      1024.0;
  cell.digest_kb = static_cast<double>(after.digest_bytes) / 1024.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  g_trace_series_period_ms = bench::ArmFlightRecorder(argc, argv);
  bench::PrintHeader("Backbone",
                     "CDS + Bloom-digest pruning: digest bits x churn sweep",
                     paper);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  bench::PhaseTimer sweep_timer;

  const std::vector<double> speeds = {0.0, 8.0};
  const std::vector<int> digest_bits = {0, 512, 2048, 8192};
  const int num_queries = paper ? 32 : 16;

  // The oracle depends only on the seeded dataset, identical across beds.
  const core::FlatIndex oracle(BuildBed(paper, 0.0, 0)->dataset);

  std::printf("%-6s %-6s %8s %10s %8s %10s %10s %7s %7s\n", "speed", "bits",
              "recall", "desc/probe", "fpr", "query KiB", "digest KiB",
              "served", "fallbk");

  double digestless_descends = 0.0, best_descends = 0.0;
  double digestless_recall = 0.0, best_recall = 0.0;
  double digestless_kb = 0.0, best_kb = 0.0, best_fpr = 0.0;
  for (double speed : speeds) {
    for (int bits : digest_bits) {
      const CellResult cell = RunCell(paper, speed, bits, num_queries, oracle);
      std::printf("%-6.0f %-6d %8.3f %10.2f %8.4f %10.1f %10.1f %7llu %7llu\n",
                  speed, bits, cell.recall, cell.descends_per_probe, cell.fpr,
                  cell.query_kb, cell.digest_kb,
                  static_cast<unsigned long long>(cell.served),
                  static_cast<unsigned long long>(cell.fallbacks));
      char key[96];
      std::snprintf(key, sizeof(key), "benchbb.v%.0f_b%d_recall", speed, bits);
      reg.GetGauge(key).Set(cell.recall);
      std::snprintf(key, sizeof(key), "benchbb.v%.0f_b%d_descends_per_probe",
                    speed, bits);
      reg.GetGauge(key).Set(cell.descends_per_probe);
      std::snprintf(key, sizeof(key), "benchbb.v%.0f_b%d_fpr", speed, bits);
      reg.GetGauge(key).Set(cell.fpr);
      std::snprintf(key, sizeof(key), "benchbb.v%.0f_b%d_query_kb", speed, bits);
      reg.GetGauge(key).Set(cell.query_kb);
      std::snprintf(key, sizeof(key), "benchbb.v%.0f_b%d_served", speed, bits);
      reg.GetGauge(key).Set(static_cast<double>(cell.served));
      if (speed == 0.0 && bits == 0) {
        digestless_descends = cell.descends_per_probe;
        digestless_recall = cell.recall;
        digestless_kb = cell.query_kb;
      }
      if (speed == 0.0 && bits == digest_bits.back()) {
        best_descends = cell.descends_per_probe;
        best_recall = cell.recall;
        best_kb = cell.query_kb;
        best_fpr = cell.fpr;
      }
    }
  }

  const double prune_factor =
      best_descends > 0.0 ? digestless_descends / best_descends : 0.0;
  const double recall_delta = std::abs(best_recall - digestless_recall);
  const double airtime_saved =
      digestless_kb > 0.0 ? 1.0 - best_kb / digestless_kb : 0.0;
  std::printf("\nfault-free tier, %d-bit digests vs digest-less walk:\n",
              digest_bits.back());
  std::printf("  domain-probe reduction: %.2fx (%.2f -> %.2f per probe)\n",
              prune_factor, digestless_descends, best_descends);
  std::printf("  measured digest FPR: %.4f\n", best_fpr);
  std::printf("  query airtime saved: %.1f%%\n", airtime_saved * 100.0);
  std::printf("  recall: %.3f vs %.3f (|delta| %.4f)\n", best_recall,
              digestless_recall, recall_delta);

  reg.GetGauge("benchbb.prune_factor").Set(prune_factor);
  reg.GetGauge("benchbb.recall_delta").Set(recall_delta);
  reg.GetGauge("benchbb.airtime_saved").Set(airtime_saved);
  reg.GetGauge("benchbb.digest_fpr").Set(best_fpr);
  reg.GetGauge("benchbb.sweep_wall_ms").Set(sweep_timer.ElapsedMs());
  std::printf("sweep wall time: %.1f s\n", sweep_timer.ElapsedMs() / 1000.0);

  if (prune_factor < 2.0) {
    std::fprintf(stderr,
                 "FAIL: digests prune only %.2fx of the digest-less walk's "
                 "domain descents (need >= 2x)\n",
                 prune_factor);
    return 1;
  }
  if (recall_delta > 0.01) {
    std::fprintf(stderr,
                 "FAIL: digest recall %.3f drifted more than 1%% from the "
                 "digest-less walk's %.3f\n",
                 best_recall, digestless_recall);
    return 1;
  }
  std::printf(">=2x domain-probe reduction at equal recall: yes\n");

  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_backbone");
  return 0;
}
