// Figure 8b: average number of hops per item insertion, as a function of the
// number of clusters on a peer.
//
// Series: Hyper-M with four overlay layers, the conventional per-item CAN in
// the original 512-dimensional space, and the paper's illustrative
// 2-dimensional CAN ("though it cannot be used to retrieve meaningful data,
// it shows the magnitude of the performance gap"). Hyper-M's per-item values
// drop below 1 because only cluster centroids are inserted while the average
// runs over all items — the paper calls this out explicitly.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/baseline.h"
#include "hyperm/network.h"

using namespace hyperm;

namespace {

double BaselineHopsPerItem(const data::Dataset& dataset,
                           const data::PeerAssignment& assignment, size_t index_dims,
                           uint64_t seed) {
  Rng rng(seed);
  core::ItemBaselineOptions options;
  options.index_dims = index_dims;
  Result<std::unique_ptr<core::CanItemBaseline>> baseline =
      core::CanItemBaseline::Build(dataset, assignment, options, rng);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n", baseline.status().ToString().c_str());
    return -1.0;
  }
  return (*baseline)->average_insert_hops_per_item();
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = 100;
  const int items_per_node = paper ? 1000 : 500;
  const int dim = 512;
  bench::PrintHeader("Figure 8b",
                     "avg hops per item insertion vs clusters per peer", paper);
  std::printf("nodes=%d items/node=%d dim=%d layers=4\n\n", nodes, items_per_node, dim);

  Rng data_rng(404);
  data::MarkovOptions data_options;
  data_options.count = nodes * items_per_node;
  data_options.dim = dim;
  data_options.num_families = 25;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, data_rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  data::AssignmentOptions assign_options;
  assign_options.num_peers = nodes;
  assign_options.num_interest_classes = 25;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, data_rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  // The baselines insert every item individually; their cost does not depend
  // on the cluster granularity, so they are flat reference lines.
  const double can512 = BaselineHopsPerItem(*dataset, *assignment, 0, 11);
  const double can2 = BaselineHopsPerItem(*dataset, *assignment, 2, 12);
  if (can512 < 0.0 || can2 < 0.0) return 1;

  const int total_items = static_cast<int>(dataset->size());
  std::printf("%-14s %16s %16s %16s\n", "clusters/peer", "Hyper-M (4L)",
              "CAN 512-d", "CAN 2-d");
  for (int clusters : {2, 5, 10, 20, 50}) {
    Rng rng(42);
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = clusters;
    Result<std::unique_ptr<core::HyperMNetwork>> net =
        core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    const sim::NetworkStats& stats = (*net)->stats();
    const double hyperm =
        static_cast<double>(stats.hops(sim::TrafficClass::kInsert) +
                            stats.hops(sim::TrafficClass::kReplicate)) /
        total_items;
    std::printf("%-14d %16.3f %16.3f %16.3f\n", clusters, hyperm, can512, can2);
  }
  std::printf("\nexpected shape: Hyper-M well below both baselines (paper: up to\n"
              "an order of magnitude), growing slowly with cluster count\n");
  bench::WriteBenchReport(argc, argv, "fig8b_insertion_clusters",
                          {{"nodes", std::to_string(nodes)},
                           {"items_per_node", std::to_string(items_per_node)}});
  return 0;
}
