// Shared helpers for the experiment-reproduction harnesses.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// and prints the series as an aligned text table. Scales default to values
// that run in seconds on a laptop; pass --paper to use the paper's full
// configuration (Section 5.1: 100 nodes x 1000 512-dim items; Section 6:
// 50 nodes x ~12,000 histograms).

#ifndef HYPERM_BENCH_BENCH_UTIL_H_
#define HYPERM_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "data/histogram_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/network.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/export.h"

namespace hyperm::bench {

/// True iff --paper was passed (full paper-scale run).
inline bool PaperScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) return true;
  }
  return false;
}

/// Scale-out tier selection. The scale tier replaces a bench's default
/// workload with a large-deployment throughput run (peers in the thousands,
/// items in the hundred-thousands): kNone runs the bench's normal sweep,
/// kSmoke is the CI-sized 1k-peer tier (trimmed items, minutes under TSan),
/// kFull additionally runs the 10k-peer configuration.
enum class ScaleMode { kNone, kSmoke, kFull };

/// Parses --scale (full tier) / --scale-smoke (CI tier) from argv.
inline ScaleMode ScaleTier(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) return ScaleMode::kFull;
    if (std::strcmp(argv[i], "--scale-smoke") == 0) return ScaleMode::kSmoke;
  }
  return ScaleMode::kNone;
}

/// Peak resident set size of this process in MiB (getrusage; ru_maxrss is
/// KiB on Linux, bytes on macOS). The scale tier gauges this so a memory
/// blow-up in the spatial hash / route cache / SoA matrices fails the
/// baseline check even when wall time stays green.
inline double PeakRssMb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

/// Wall-clock phase timer for the scale tier's per-phase gauges. Gauge names
/// must contain "wall" — check_report skips wall-derived keys when diffing
/// against a baseline.
class PhaseTimer {
 public:
  PhaseTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Value of --json=<path> (machine-readable report destination), or "" when
/// the flag was not passed.
inline std::string JsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return std::string(argv[i] + 7);
  }
  return std::string();
}

/// Writes the global metrics + span report to the --json=<path> destination
/// (no-op without the flag). Call once at the end of main, after the run's
/// instrumented work; exits nonzero on I/O failure so CI notices.
inline void WriteBenchReport(int argc, char** argv, const std::string& bench_name,
                             std::map<std::string, std::string> extra = {}) {
  const std::string path = JsonPath(argc, argv);
  if (path.empty()) return;
  obs::RunMeta meta;
  meta.bench = bench_name;
  switch (ScaleTier(argc, argv)) {
    case ScaleMode::kFull:
      meta.scale = "scale";
      break;
    case ScaleMode::kSmoke:
      meta.scale = "scale-smoke";
      break;
    case ScaleMode::kNone:
      meta.scale = PaperScale(argc, argv) ? "paper" : "default";
      break;
  }
  meta.extra = std::move(extra);
  const Status status = obs::WriteGlobalReport(path, meta);
  if (!status.ok()) {
    std::fprintf(stderr, "report: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\nreport written to %s\n", path.c_str());
}

/// Value of --trace-out=<path> (Chrome-trace destination for the flight
/// recorder), or "" when the flag was not passed.
inline std::string TraceOutPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      return std::string(argv[i] + 12);
    }
  }
  return std::string();
}

/// Arms the global flight recorder when --trace-out was passed; no-op (and
/// zero recording overhead) otherwise. Call first thing in main, before the
/// instrumented work. Returns the time-series sampling period the bench
/// should plumb into HyperMOptions::trace_series_period_ms — 100 simulated
/// ms under tracing, 0 (probe disabled) otherwise.
inline double ArmFlightRecorder(int argc, char** argv) {
  if (TraceOutPath(argc, argv).empty()) return 0.0;
  obs::EventLog::Global().Arm();
  return 100.0;
}

/// Writes the flight recorder's Chrome trace to the --trace-out=<path>
/// destination plus the raw event log to <path>.jsonl (no-op without the
/// flag). Exits nonzero on I/O failure so CI notices.
inline void WriteTraceArtifacts(int argc, char** argv) {
  const std::string path = TraceOutPath(argc, argv);
  if (path.empty()) return;
  const obs::EventLog& log = obs::EventLog::Global();
  if (!obs::WriteChromeTrace(path, log)) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  if (!obs::WriteEventsJsonl(path + ".jsonl", log)) {
    std::fprintf(stderr, "trace: cannot write %s.jsonl\n", path.c_str());
    std::exit(1);
  }
  std::printf("trace written to %s (events: %s.jsonl, dropped: %llu)\n",
              path.c_str(), path.c_str(),
              static_cast<unsigned long long>(log.dropped()));
}

/// Prints the bench header with the resolved configuration.
inline void PrintHeader(const std::string& figure, const std::string& what,
                        bool paper_scale) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("scale: %s (pass --paper for the paper's full configuration)\n",
              paper_scale ? "paper" : "default");
  std::printf("==============================================================\n");
}

/// The Section 6 effectiveness testbed: ALOI-like histograms over 50 nodes
/// (paper: 1,000 objects x 12 views; default: 350 x 12).
struct EffectivenessBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

/// Builds the Section 6 testbed; exits on error (bench binaries only).
/// Heap-allocated because the network points into the bed's dataset.
inline std::unique_ptr<EffectivenessBed> BuildEffectivenessBed(
    bool paper_scale, const core::HyperMOptions& options, uint64_t seed = 606,
    int num_objects_override = 0) {
  Rng rng(seed);
  data::HistogramOptions data_options;
  data_options.num_objects =
      num_objects_override > 0 ? num_objects_override : (paper_scale ? 1000 : 350);
  data_options.views_per_object = 12;
  data_options.dim = 64;
  Result<data::Dataset> dataset = data::GenerateHistograms(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  // The network holds a pointer to the dataset, so move it into the bed (its
  // final home) before Build.
  auto bed = std::make_unique<EffectivenessBed>();
  bed->dataset = std::move(dataset).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 50;
  assign_options.num_interest_classes = 25;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed->dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n", assignment.status().ToString().c_str());
    std::exit(1);
  }
  bed->assignment = std::move(assignment).value();
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(bed->dataset, bed->assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    std::exit(1);
  }
  bed->network = std::move(network).value();
  return bed;
}

}  // namespace hyperm::bench

#endif  // HYPERM_BENCH_BENCH_UTIL_H_
