// Ablation: sphere replication into overlapping zones (the Fig. 6 problem).
//
// "A problem specific to CAN when used to index non-zero sized objects is
// the possibility that the area of the object overlaps more than one region.
// As depicted in Figure 6, the query Q would not retrieve the information
// present in data cluster C because the node its centroid belongs to does
// not have any information about that cluster. Replication cannot be avoided
// in this context."
//
// Part 1 demonstrates the failure directly at the overlay level: random
// cluster spheres are published into a 2-D CAN with replication on/off and
// random range queries count the intersecting clusters that the zone flood
// fails to surface. Part 2 shows the end-to-end effect on Hyper-M range
// recall under coarse summaries (few clusters per peer = big spheres).

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "can/can_overlay.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

namespace {

void OverlayLevelDemo(bool replicate) {
  sim::NetworkStats stats;
  Rng rng(31);
  auto can = can::CanOverlay::Build(2, 64, &stats, rng).value();
  can->set_replicate_spheres(replicate);

  std::vector<overlay::PublishedCluster> all;
  for (uint64_t id = 1; id <= 300; ++id) {
    overlay::PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.02, 0.12)};
    c.owner_peer = static_cast<int>(id % 64);
    c.items = 10;
    c.cluster_id = id;
    if (!can->Insert(c, 0).ok()) std::exit(1);
    all.push_back(c);
  }
  const uint64_t insert_hops = stats.hops(sim::TrafficClass::kInsert) +
                               stats.hops(sim::TrafficClass::kReplicate);

  int should_match = 0, missed = 0, queries_with_misses = 0;
  const int num_queries = 200;
  for (int q = 0; q < num_queries; ++q) {
    geom::Sphere query{{rng.NextDouble(), rng.NextDouble()}, rng.Uniform(0.02, 0.15)};
    Result<overlay::RangeQueryResult> result = can->RangeQuery(query, 0);
    if (!result.ok()) std::exit(1);
    std::set<uint64_t> found;
    for (const overlay::PublishedCluster& c : result->matches) found.insert(c.cluster_id);
    bool miss_here = false;
    for (const overlay::PublishedCluster& c : all) {
      if (!c.sphere.Intersects(query)) continue;
      ++should_match;
      if (!found.count(c.cluster_id)) {
        ++missed;
        miss_here = true;
      }
    }
    if (miss_here) ++queries_with_misses;
  }
  std::printf("%-14s %14llu %14d %12d %18d/%d\n", replicate ? "on" : "off",
              static_cast<unsigned long long>(insert_hops), should_match, missed,
              queries_with_misses, num_queries);
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Ablation", "sphere replication on/off (Fig. 6 problem)", paper);

  std::printf("--- overlay level: 300 spheres, 64-node 2-D CAN, 200 queries ---\n");
  std::printf("%-14s %14s %14s %12s %20s\n", "replication", "insert hops",
              "intersecting", "missed", "queries with misses");
  OverlayLevelDemo(/*replicate=*/true);
  OverlayLevelDemo(/*replicate=*/false);

  std::printf("\n--- end to end: Hyper-M range recall, coarse summaries (K_p=3) ---\n");
  std::printf("%-14s %14s %16s %20s\n", "replication", "insert hops",
              "range recall", "queries with misses");
  for (bool replicate : {true, false}) {
    core::HyperMOptions options;
    options.num_layers = 4;
    options.clusters_per_peer = 3;  // coarse: big spheres straddle zones
    options.replicate_spheres = replicate;
    auto bed = bench::BuildEffectivenessBed(paper, options);
    const core::FlatIndex oracle(bed->dataset);
    const uint64_t insert_hops =
        bed->network->stats().hops(sim::TrafficClass::kInsert) +
        bed->network->stats().hops(sim::TrafficClass::kReplicate);

    std::vector<core::PrecisionRecall> range;
    int queries_with_misses = 0;
    const int num_queries = 40;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      const double eps = oracle.KnnRadius(query, 20);
      Result<std::vector<core::ItemId>> full =
          bed->network->RangeQuery(query, eps, q % 50, /*max_peers=*/-1);
      if (!full.ok()) {
        std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
        return 1;
      }
      const core::PrecisionRecall pr =
          core::Evaluate(*full, oracle.RangeSearch(query, eps));
      if (pr.recall < 1.0) ++queries_with_misses;
      range.push_back(pr);
    }
    std::printf("%-14s %14llu %16.3f %17d/%d\n", replicate ? "on" : "off",
                static_cast<unsigned long long>(insert_hops),
                core::Summarize(range).mean_recall, queries_with_misses, num_queries);
  }
  std::printf("\nexpected shape: at the overlay level, disabling replication\n"
              "loses a large share of intersecting clusters (the Fig. 6 bug).\n"
              "End to end the redundancy of multiple clusters per peer and\n"
              "multiple levels usually masks single-cluster misses — but the\n"
              "guarantee of Theorem 4.1 only holds with replication on.\n");
  return 0;
}
