// Radio-channel regression bench: queue-aware latency vs offered load, plus
// a mobility disruption snapshot. Fully seeded and deterministic; the JSON
// report is diffed against bench/baselines/BENCH_channel.json in CI.
//
// Part 1 is the subsystem's headline property: with per-node FIFO transmit
// queues and finite bandwidth, latency must be monotone non-decreasing in
// offered load (the free-channel LinkModel was load-blind). The bench issues
// identical queries back-to-back at one simulated instant so each one queues
// behind its predecessors, reports the running mean latency at increasing
// load levels, and fails hard if monotonicity is ever violated.
//
// Part 2 deploys the same system on a mobile sparse field and reports the
// geometry-driven disruption counters (disconnected ticks, unreachable
// drops, ARQ retries) and the recall the soft-state machinery sustains.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "channel/radio_channel.h"
#include "sim/stats.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "obs/metrics.h"

using namespace hyperm;

namespace {

// Flight-recorder time-series period, set from --trace-out in main. The
// sampling probe only reads state; 0 leaves the simulator queue untouched.
double g_trace_series_period_ms = 0.0;

struct ChannelBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<core::HyperMNetwork> network;
};

std::unique_ptr<ChannelBed> BuildBed(bool paper, double speed_m_per_s,
                                     double field_size_m, double radio_range_m,
                                     bool csma_mac = false) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = paper ? 2000 : 400;
  data_options.dim = paper ? 128 : 32;
  data_options.num_families = 8;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  auto bed = std::make_unique<ChannelBed>();
  bed->dataset = std::move(dataset).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = paper ? 50 : 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = paper ? 12 : 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed->dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n", assignment.status().ToString().c_str());
    std::exit(1);
  }
  bed->assignment = std::move(assignment).value();
  core::HyperMOptions options;
  options.net.unreliable = true;
  options.net.retry.adaptive = true;
  options.net.summary_ttl_ms = 1500.0;
  options.net.republish_period_ms = 400.0;
  options.channel.enabled = true;
  options.channel.field.field_size_m = field_size_m;
  options.channel.field.radio_range_m = radio_range_m;
  options.channel.field.max_placement_attempts = 5000;
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = speed_m_per_s;
  // Room-scale radio, fast enough that a query burst's queueing signal is
  // readable in milliseconds rather than minutes.
  options.channel.bandwidth_bytes_per_ms = 1000.0;
  options.channel.tx_overhead_ms = 1.0;
  if (csma_mac) options.channel.mac.kind = channel::MacOptions::Kind::kCsmaCa;
  options.trace_series_period_ms = g_trace_series_period_ms;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(bed->dataset, bed->assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    std::exit(1);
  }
  bed->network = std::move(network).value();
  return bed;
}

// --- Scale-out tier ---------------------------------------------------------
//
// --scale-smoke / --scale replace the default sweep with a channel-only
// large-deployment run: build a 1k-node (10k under --scale) radio topology,
// walk the mobility clock, and route a deterministic stream of messages
// through the epoch-cached BFS routes. This isolates the spatial-hash
// rebuild and route-cache hot paths from the overlay stack; every counter is
// seeded and deterministic, wall/throughput/RSS gauges are checked with
// wide or absolute tolerances from the baseline's "check" object.

double ScaleFieldSide(int num_nodes) {
  constexpr double kRange = 50.0;
  constexpr double kTargetDegree = 12.0;
  return std::sqrt(static_cast<double>(num_nodes) * 3.14159265358979323846 *
                   kRange * kRange / kTargetDegree);
}

void RunScaleDeployment(int num_nodes, int num_messages, int mobility_ticks,
                        const char* prefix) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::printf("\n--- scale deployment: %d nodes, %d messages, %d ticks ---\n",
              num_nodes, num_messages, mobility_ticks);

  bench::PhaseTimer build_timer;
  sim::NetworkStats stats;
  channel::ChannelOptions options;
  options.field.field_size_m = ScaleFieldSide(num_nodes);
  options.field.radio_range_m = 50.0;
  options.field.max_placement_attempts = 5000;
  options.tick_ms = 100.0;
  options.speed_m_per_s = 15.0;
  options.bandwidth_bytes_per_ms = 1000.0;
  options.tx_overhead_ms = 1.0;
  options.seed = 4242;
  Result<std::unique_ptr<channel::RadioChannel>> radio_result =
      channel::RadioChannel::Create(num_nodes, options, &stats);
  if (!radio_result.ok()) {
    std::fprintf(stderr, "channel: %s\n",
                 radio_result.status().ToString().c_str());
    std::exit(1);
  }
  const std::unique_ptr<channel::RadioChannel> radio =
      std::move(radio_result).value();
  const double build_ms = build_timer.ElapsedMs();

  // Interleave mobility with routed traffic: every tick invalidates the
  // route cache, then the next message burst repopulates it lazily — the
  // exact rebuild-amortisation pattern the cache exists for.
  bench::PhaseTimer route_timer;
  Rng traffic(MixSeed(options.seed, 7));
  const int messages_per_tick =
      std::max(1, num_messages / std::max(1, mobility_ticks));
  sim::TimeMs now = 0.0;
  int sent = 0;
  uint64_t reachable = 0;
  double latency_sum_ms = 0.0;
  for (int tick = 0; sent < num_messages; ++tick) {
    if (tick > 0 && tick <= mobility_ticks) {
      radio->Step();
      now += options.tick_ms;
    }
    for (int m = 0; m < messages_per_tick && sent < num_messages; ++m, ++sent) {
      net::Message message;
      message.src = static_cast<int>(traffic.UniformInt(0, num_nodes - 1));
      message.dst = static_cast<int>(traffic.UniformInt(0, num_nodes - 1));
      message.bytes = 256;
      message.cls = sim::TrafficClass::kQuery;
      const net::ChannelTransmission tx = radio->Transmit(message, now);
      if (tx.reachable) ++reachable;
      latency_sum_ms += tx.latency_ms;
    }
  }
  const double route_ms = route_timer.ElapsedMs();

  const channel::ChannelCounters& ch = radio->counters();
  const manet::RouteCacheCounters& rc =
      radio->topology().route_cache_counters();
  const double messages_per_sec =
      route_ms > 0.0 ? 1000.0 * num_messages / route_ms : 0.0;
  const double rss_mb = bench::PeakRssMb();
  std::printf("  build:    %10.1f ms\n", build_ms);
  std::printf("  routing:  %10.1f ms (%d messages, %.0f msg/s)\n", route_ms,
              num_messages, messages_per_sec);
  std::printf("  reachable: %llu/%d, mean latency %.2f ms\n",
              static_cast<unsigned long long>(reachable), num_messages,
              latency_sum_ms / num_messages);
  std::printf("  radio tx: %llu, route cache: %llu hits / %llu misses / "
              "%llu invalidations\n",
              static_cast<unsigned long long>(ch.radio_transmissions),
              static_cast<unsigned long long>(rc.hits),
              static_cast<unsigned long long>(rc.misses),
              static_cast<unsigned long long>(rc.invalidations));
  std::printf("  peak RSS: %9.1f MiB\n", rss_mb);

  char key[96];
  std::snprintf(key, sizeof(key), "scale.%s.build_wall_ms", prefix);
  reg.GetGauge(key).Set(build_ms);
  std::snprintf(key, sizeof(key), "scale.%s.route_wall_ms", prefix);
  reg.GetGauge(key).Set(route_ms);
  std::snprintf(key, sizeof(key), "scale.%s.messages_per_sec", prefix);
  reg.GetGauge(key).Set(messages_per_sec);
  std::snprintf(key, sizeof(key), "scale.%s.reachable_messages", prefix);
  reg.GetGauge(key).Set(static_cast<double>(reachable));
  std::snprintf(key, sizeof(key), "scale.%s.radio_transmissions", prefix);
  reg.GetGauge(key).Set(static_cast<double>(ch.radio_transmissions));
  std::snprintf(key, sizeof(key), "scale.%s.route_cache_hits", prefix);
  reg.GetGauge(key).Set(static_cast<double>(rc.hits));
  std::snprintf(key, sizeof(key), "scale.%s.route_cache_misses", prefix);
  reg.GetGauge(key).Set(static_cast<double>(rc.misses));
  std::snprintf(key, sizeof(key), "scale.%s.peak_rss_mb", prefix);
  reg.GetGauge(key).Set(rss_mb);
}

int RunScaleTier(bench::ScaleMode mode, int argc, char** argv) {
  bench::PrintHeader("Channel --scale",
                     "large-topology mobility + routed-message throughput",
                     /*paper_scale=*/false);
  if (mode == bench::ScaleMode::kSmoke) {
    RunScaleDeployment(/*num_nodes=*/1000, /*num_messages=*/50000,
                       /*mobility_ticks=*/100, "c1000");
  } else {
    RunScaleDeployment(/*num_nodes=*/1000, /*num_messages=*/200000,
                       /*mobility_ticks=*/200, "c1000");
    RunScaleDeployment(/*num_nodes=*/10000, /*num_messages=*/100000,
                       /*mobility_ticks=*/100, "c10000");
  }
  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_channel");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  g_trace_series_period_ms = bench::ArmFlightRecorder(argc, argv);
  const bench::ScaleMode scale = bench::ScaleTier(argc, argv);
  if (scale != bench::ScaleMode::kNone) return RunScaleTier(scale, argc, argv);
  bench::PrintHeader("Channel", "queue-aware latency under load + mobility disruption",
                     paper);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  // --- Part 1: offered load -> latency (static dense field, queues only) ---
  auto bed = BuildBed(paper, /*speed_m_per_s=*/0.0, /*field_size_m=*/150.0,
                      /*radio_range_m=*/100.0);
  const channel::RadioChannel* radio = bed->network->radio_channel();
  bed->network->AdvanceTo(radio->DrainedAtMs() + 1.0);  // drain publication

  const int max_load = 16;
  const Vector& query = bed->dataset.items[7];
  std::vector<double> latency;  // latency of the i-th back-to-back query
  for (int i = 0; i < max_load; ++i) {
    core::RangeQueryInfo info;
    Result<std::vector<core::ItemId>> r =
        bed->network->RangeQuery(query, 0.8, /*querying_peer=*/0, -1, &info);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    latency.push_back(info.latency_ms);
  }

  std::printf("offered load (back-to-back queries) -> mean latency\n");
  std::printf("%-8s %16s %16s\n", "load", "mean lat (ms)", "last lat (ms)");
  double running_sum = 0.0;
  double previous_mean = 0.0;
  bool monotone = true;
  for (int i = 0; i < max_load; ++i) {
    running_sum += latency[static_cast<size_t>(i)];
    const int load = i + 1;
    const double mean = running_sum / load;
    if (load == 1 || load == 2 || load == 4 || load == 8 || load == 16) {
      std::printf("%-8d %16.2f %16.2f\n", load, mean,
                  latency[static_cast<size_t>(i)]);
      char key[64];
      std::snprintf(key, sizeof(key), "benchc.load%d_latency_ms", load);
      reg.GetGauge(key).Set(mean);
    }
    if (mean + 1e-9 < previous_mean) monotone = false;
    previous_mean = mean;
  }
  if (!monotone) {
    std::fprintf(stderr,
                 "FAIL: queue-aware latency not monotone in offered load\n");
    return 1;
  }
  std::printf("monotone non-decreasing in load: yes\n");
  std::printf("queued transmissions: %llu, total queue wait: %.1f ms\n\n",
              static_cast<unsigned long long>(radio->counters().queued_transmissions),
              radio->counters().queue_wait_ms);

  // --- Part 2: mobility disruption snapshot --------------------------------
  // A moderately sparse field: mostly connected, with intermittent splits.
  auto mobile = BuildBed(paper, /*speed_m_per_s=*/25.0, /*field_size_m=*/220.0,
                         /*radio_range_m=*/70.0);
  const channel::RadioChannel* mobile_radio = mobile->network->radio_channel();
  mobile->network->AdvanceTo(mobile_radio->DrainedAtMs() + 30000.0);  // 30 s
  // Measure recall at a stably-healed instant (splits at the measurement
  // moment would swamp the soft-state signal with routing failures): walk
  // the clock until the field has been whole for a full republish period.
  {
    int healed_ticks = 0;
    for (int i = 0; i < 3000 && healed_ticks * mobile_radio->tick_ms() <= 800.0;
         ++i) {
      mobile->network->AdvanceTo(mobile->network->now() + mobile_radio->tick_ms());
      healed_ticks = mobile_radio->connected() ? healed_ticks + 1 : 0;
    }
  }

  const core::FlatIndex oracle(mobile->dataset);
  std::vector<core::PrecisionRecall> results;
  const int num_queries = 12;
  const size_t n = mobile->dataset.size();
  for (int q = 0; q < num_queries; ++q) {
    const Vector& center = mobile->dataset.items[(static_cast<size_t>(q) * 17) % n];
    Result<std::vector<core::ItemId>> r = mobile->network->RangeQuery(
        center, 0.8, q % mobile->network->num_peers(), -1);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    results.push_back(core::Evaluate(*r, oracle.RangeSearch(center, 0.8)));
  }
  const double recall = core::Summarize(results).mean_recall;
  const net::TransportCounters net_counters = mobile->network->transport().counters();
  const channel::ChannelCounters& ch = mobile_radio->counters();

  std::printf("mobility snapshot after 30 s at 25 m/s (220 m field, 70 m range):\n");
  std::printf("  mobility ticks:        %llu (disconnected: %llu)\n",
              static_cast<unsigned long long>(ch.mobility_steps),
              static_cast<unsigned long long>(ch.disconnected_steps));
  std::printf("  radio transmissions:   %llu (unreachable: %llu)\n",
              static_cast<unsigned long long>(ch.radio_transmissions),
              static_cast<unsigned long long>(ch.unreachable_transmissions));
  std::printf("  ARQ retries:           %llu (dead letters: %llu)\n",
              static_cast<unsigned long long>(net_counters.retries),
              static_cast<unsigned long long>(net_counters.dead_letters));
  std::printf("  republish rounds:      %llu\n",
              static_cast<unsigned long long>(mobile->network->soft_state().republishes));
  std::printf("  range recall:          %.3f\n", recall);
  std::printf("  radio energy:          %.1f mJ\n",
              mobile->network->stats().total_energy_millijoules());

  reg.GetGauge("benchc.mobile_recall").Set(recall);
  reg.GetGauge("benchc.mobile_disconnected_steps")
      .Set(static_cast<double>(ch.disconnected_steps));
  reg.GetGauge("benchc.mobile_retries").Set(static_cast<double>(net_counters.retries));
  reg.GetGauge("benchc.mobile_energy_mj")
      .Set(mobile->network->stats().total_energy_millijoules());

  // --- Part 3: CSMA/CA contention snapshot ---------------------------------
  // Same dense static field as Part 1 but under the 802.11-style MAC: the
  // query burst now pays carrier-sense deferrals and collision retransmits.
  // The per-cause channel.mac.* counters flow into the global registry (and
  // hence this bench's JSON report) so MAC losses are never silent.
  auto csma = BuildBed(paper, /*speed_m_per_s=*/0.0, /*field_size_m=*/150.0,
                       /*radio_range_m=*/100.0, /*csma_mac=*/true);
  const channel::RadioChannel* csma_radio = csma->network->radio_channel();
  csma->network->AdvanceTo(csma_radio->DrainedAtMs() + 1.0);
  for (int i = 0; i < max_load; ++i) {
    Result<std::vector<core::ItemId>> r =
        csma->network->RangeQuery(query, 0.8, /*querying_peer=*/0, -1);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  const channel::MacCounters& mac = csma_radio->mac().counters();
  std::printf("\nCSMA/CA contention snapshot (same burst as part 1):\n");
  std::printf("  frames sent:        %llu\n",
              static_cast<unsigned long long>(mac.frames_sent));
  std::printf("  deferrals:          %llu\n",
              static_cast<unsigned long long>(mac.deferrals));
  std::printf("  collisions:         %llu (retransmits: %llu)\n",
              static_cast<unsigned long long>(mac.collisions),
              static_cast<unsigned long long>(mac.retransmits));
  std::printf("  retry-limit drops:  %llu\n",
              static_cast<unsigned long long>(mac.drops_retry_limit));
  reg.GetGauge("benchc.csma_frames_sent")
      .Set(static_cast<double>(mac.frames_sent));
  reg.GetGauge("benchc.csma_deferrals").Set(static_cast<double>(mac.deferrals));
  reg.GetGauge("benchc.csma_collisions")
      .Set(static_cast<double>(mac.collisions));
  reg.GetGauge("benchc.csma_drops_retry_limit")
      .Set(static_cast<double>(mac.drops_retry_limit));

  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_channel");
  return 0;
}
