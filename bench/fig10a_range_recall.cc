// Figure 10a: effectiveness of range queries.
//
// "Precision is constantly 100% because once we decide which peers to
// contact, the query is performed directly on those peers... Figure 10a
// shows that the recall reaches as high as 96% if enough peers are
// contacted." We sweep the number of peers contacted and, per the paper,
// obtain the min/max error bounds by varying the query radius.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Figure 10a",
                     "range-query recall vs peers contacted (ALOI-like)", paper);

  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  auto bed = bench::BuildEffectivenessBed(paper, options);
  const core::FlatIndex oracle(bed->dataset);
  std::printf("nodes=50 items=%zu dim=%zu clusters/peer=10 layers=4\n\n",
              bed->dataset.size(), bed->dataset.dim());

  const int num_queries = 25;
  std::printf("%-16s %10s %18s %18s\n", "peers contacted", "precision",
              "recall (mean)", "recall [min..max]");
  for (int contacted : {1, 2, 4, 8, 16, 32, 50}) {
    std::vector<core::PrecisionRecall> results;
    for (int q = 0; q < num_queries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed->dataset.size();
      const Vector& query = bed->dataset.items[index];
      // Radii varied as in the paper: exact 10/25/50-NN radii.
      for (int k : {10, 25, 50}) {
        const double eps = oracle.KnnRadius(query, k);
        Result<std::vector<core::ItemId>> retrieved = bed->network->RangeQuery(
            query, eps, /*querying_peer=*/q % 50, contacted);
        if (!retrieved.ok()) {
          std::fprintf(stderr, "%s\n", retrieved.status().ToString().c_str());
          return 1;
        }
        results.push_back(
            core::Evaluate(*retrieved, oracle.RangeSearch(query, eps)));
      }
    }
    const core::EffectivenessSummary s = core::Summarize(results);
    std::printf("%-16d %10.3f %18.3f     [%.2f .. %.2f]\n", contacted,
                s.mean_precision, s.mean_recall, s.min_recall, s.max_recall);
  }
  std::printf("\nexpected shape: precision pinned at 1.0; recall climbs toward\n"
              "~0.95+ as the contact budget covers all candidate peers\n");
  bench::WriteBenchReport(argc, argv, "fig10a_range_recall");
  return 0;
}
