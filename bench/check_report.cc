// bench-smoke validator: checks that a bench --json report conforms to the
// schema documented in obs/export.h (schema_version 1) and — when the
// instrumentation is compiled in — that it carries a useful amount of data:
// at least 10 named metrics and a nested span tree covering Build and one
// query path. Exits 0 on success, 1 with a diagnostic otherwise.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/result.h"
#include "obs/export.h"
#include "obs/json.h"

namespace hyperm {
namespace {

#define CHECK_REPORT(cond, what)                        \
  do {                                                  \
    if (!(cond)) {                                      \
      std::fprintf(stderr, "check_report: %s\n", what); \
      return 1;                                         \
    }                                                   \
  } while (0)

// Keys whose values are wall-clock derived and therefore nondeterministic
// run to run; they are schema-checked but never value-diffed.
bool IsWallClockKey(const std::string& key) {
  return key.find("_us") != std::string::npos ||
         key.find("wall") != std::string::npos;
}

bool WithinRelativeTolerance(double actual, double expected, double tolerance) {
  const double scale = std::max(std::abs(actual), std::abs(expected));
  if (scale == 0.0) return true;
  return std::abs(actual - expected) <= tolerance * scale;
}

// Platform tag matched against the baseline's optional check.platforms map,
// so one checked-in baseline can carry per-platform tolerance widenings
// (allocator and libm differences move traffic and recall by platform-
// specific amounts at paper scale).
const char* PlatformTag() {
#if defined(__APPLE__) && (defined(__aarch64__) || defined(__arm64__))
  return "darwin-arm64";
#elif defined(__APPLE__)
  return "darwin-x86_64";
#elif defined(__linux__) && defined(__aarch64__)
  return "linux-aarch64";
#elif defined(__linux__)
  return "linux-x86_64";
#else
  return "unknown";
#endif
}

// Tolerances for the baseline diff. Defaults reproduce the historical
// hard-coded policy (counters 10%, gauges 5%); a baseline may override them
// through an optional top-level "check" object:
//
//   "check": {
//     "counter_tolerance": 0.10,
//     "gauge_tolerance": 0.05,
//     "keys": { "benchq.range_recall": 0.02 },         // per-key override
//     "abs_keys": { "scale.p1000.peak_rss_mb": 512 },  // absolute |a-e| bound
//     "platforms": { "linux-aarch64": { "gauge_tolerance": 0.08 } }
//   }
//
// "abs_keys" entries switch the named key from relative to absolute
// tolerance (|actual - expected| <= bound) — the right shape for peak-RSS
// gauges, where a small baseline would make any relative band either
// meaninglessly wide or flaky against allocator noise. A matching platforms
// entry is applied on top of the file-level values.
struct CheckConfig {
  double counter_tolerance = 0.10;
  double gauge_tolerance = 0.05;
  std::map<std::string, double> key_tolerances;
  std::map<std::string, double> abs_tolerances;

  double ForCounter(const std::string& key) const {
    const auto it = key_tolerances.find(key);
    return it != key_tolerances.end() ? it->second : counter_tolerance;
  }
  double ForGauge(const std::string& key) const {
    const auto it = key_tolerances.find(key);
    return it != key_tolerances.end() ? it->second : gauge_tolerance;
  }
  /// Absolute tolerance for `key`, or a negative value when the key uses the
  /// relative policy.
  double AbsoluteFor(const std::string& key) const {
    const auto it = abs_tolerances.find(key);
    return it != abs_tolerances.end() ? it->second : -1.0;
  }
};

void ApplyCheckObject(const obs::Json& check, CheckConfig* config) {
  const obs::Json* counter = check.Find("counter_tolerance");
  if (counter != nullptr && counter->is_number()) {
    config->counter_tolerance = counter->as_number();
  }
  const obs::Json* gauge = check.Find("gauge_tolerance");
  if (gauge != nullptr && gauge->is_number()) {
    config->gauge_tolerance = gauge->as_number();
  }
  const obs::Json* keys = check.Find("keys");
  if (keys != nullptr && keys->is_object()) {
    for (const auto& [key, value] : keys->members()) {
      if (value.is_number()) config->key_tolerances[key] = value.as_number();
    }
  }
  const obs::Json* abs_keys = check.Find("abs_keys");
  if (abs_keys != nullptr && abs_keys->is_object()) {
    for (const auto& [key, value] : abs_keys->members()) {
      if (value.is_number()) config->abs_tolerances[key] = value.as_number();
    }
  }
}

CheckConfig ParseCheckConfig(const obs::Json& baseline_root) {
  CheckConfig config;
  const obs::Json* check = baseline_root.Find("check");
  if (check == nullptr || !check->is_object()) return config;
  ApplyCheckObject(*check, &config);
  const obs::Json* platforms = check->Find("platforms");
  if (platforms != nullptr && platforms->is_object()) {
    const obs::Json* mine = platforms->Find(PlatformTag());
    if (mine != nullptr && mine->is_object()) ApplyCheckObject(*mine, &config);
  }
  return config;
}

// Diffs the report's counters and gauges against a baseline report under
// `config`'s relative tolerances. Wall-clock keys are skipped; a baseline key
// missing from the report is an error; keys the baseline does not know are
// only warned about (new metrics should be added to the baseline, not block
// it). Returns the number of violations.
int DiffAgainstBaseline(const obs::MetricsSnapshot& actual,
                        const obs::MetricsSnapshot& baseline,
                        const CheckConfig& config) {
  int violations = 0;
  for (const auto& [key, expected] : baseline.counters) {
    if (IsWallClockKey(key)) continue;
    const auto it = actual.counters.find(key);
    if (it == actual.counters.end()) {
      std::fprintf(stderr, "check_report: counter '%s' missing from report\n",
                   key.c_str());
      ++violations;
      continue;
    }
    const double actual_value = static_cast<double>(it->second);
    const double expected_value = static_cast<double>(expected);
    const double abs_tolerance = config.AbsoluteFor(key);
    if (abs_tolerance >= 0.0) {
      if (std::abs(actual_value - expected_value) > abs_tolerance) {
        std::fprintf(stderr,
                     "check_report: counter '%s' = %llu, baseline %llu "
                     "(>|%g| absolute)\n",
                     key.c_str(), static_cast<unsigned long long>(it->second),
                     static_cast<unsigned long long>(expected), abs_tolerance);
        ++violations;
      }
      continue;
    }
    const double tolerance = config.ForCounter(key);
    if (!WithinRelativeTolerance(actual_value, expected_value, tolerance)) {
      std::fprintf(stderr,
                   "check_report: counter '%s' = %llu, baseline %llu (>%g%%)\n",
                   key.c_str(), static_cast<unsigned long long>(it->second),
                   static_cast<unsigned long long>(expected), tolerance * 100.0);
      ++violations;
    }
  }
  for (const auto& [key, expected] : baseline.gauges) {
    if (IsWallClockKey(key)) continue;
    const auto it = actual.gauges.find(key);
    if (it == actual.gauges.end()) {
      std::fprintf(stderr, "check_report: gauge '%s' missing from report\n",
                   key.c_str());
      ++violations;
      continue;
    }
    const double abs_tolerance = config.AbsoluteFor(key);
    if (abs_tolerance >= 0.0) {
      if (std::abs(it->second - expected) > abs_tolerance) {
        std::fprintf(stderr,
                     "check_report: gauge '%s' = %g, baseline %g "
                     "(>|%g| absolute)\n",
                     key.c_str(), it->second, expected, abs_tolerance);
        ++violations;
      }
      continue;
    }
    const double tolerance = config.ForGauge(key);
    if (!WithinRelativeTolerance(it->second, expected, tolerance)) {
      std::fprintf(stderr,
                   "check_report: gauge '%s' = %g, baseline %g (>%g%%)\n",
                   key.c_str(), it->second, expected, tolerance * 100.0);
      ++violations;
    }
  }
  for (const auto& [key, value] : actual.counters) {
    (void)value;
    if (!IsWallClockKey(key) && !baseline.counters.count(key)) {
      std::fprintf(stderr, "check_report: note: counter '%s' not in baseline\n",
                   key.c_str());
    }
  }
  for (const auto& [key, value] : actual.gauges) {
    (void)value;
    if (!IsWallClockKey(key) && !baseline.gauges.count(key)) {
      std::fprintf(stderr, "check_report: note: gauge '%s' not in baseline\n",
                   key.c_str());
    }
  }
  return violations;
}

Result<obs::Json> LoadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return InvalidArgumentError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::Parse(buffer.str());
}

const obs::Json* FindSpan(const obs::Json& spans, const std::string& name) {
  for (const obs::Json& span : spans.items()) {
    const obs::Json* n = span.Find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &span;
  }
  return nullptr;
}

int Run(const std::string& path, const std::string& baseline_path) {
  std::ifstream in(path);
  CHECK_REPORT(in.good(), "cannot open report file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<obs::Json> parsed = obs::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "check_report: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const obs::Json& report = parsed.value();
  CHECK_REPORT(report.is_object(), "report root must be an object");

  const obs::Json* version = report.Find("schema_version");
  CHECK_REPORT(version != nullptr && version->is_number() &&
                   static_cast<int>(version->as_number()) ==
                       obs::kReportSchemaVersion,
               "schema_version must be 1");

  const obs::Json* meta = report.Find("run_meta");
  CHECK_REPORT(meta != nullptr && meta->is_object(), "run_meta must be an object");
  const obs::Json* bench = meta->Find("bench");
  CHECK_REPORT(bench != nullptr && bench->is_string() && !bench->as_string().empty(),
               "run_meta.bench must be a non-empty string");

  const obs::Json* metrics = report.Find("metrics");
  CHECK_REPORT(metrics != nullptr && metrics->is_object(),
               "metrics must be an object");
  size_t named = 0;
  for (const char* family : {"counters", "gauges", "histograms"}) {
    const obs::Json* group = metrics->Find(family);
    CHECK_REPORT(group != nullptr && group->is_object(),
                 "metrics.{counters,gauges,histograms} must be objects");
    named += group->members().size();
  }
  // Round-trip through the snapshot parser — the strictest structural check.
  Result<obs::MetricsSnapshot> snapshot = obs::MetricsFromJson(report);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "check_report: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }

  const obs::Json* spans = report.Find("spans");
  CHECK_REPORT(spans != nullptr && spans->is_array(), "spans must be an array");
  const obs::Json* dropped = report.Find("dropped_spans");
  CHECK_REPORT(dropped != nullptr && dropped->is_number(),
               "dropped_spans must be a number");
  // Saturated buffers are a data-quality warning, not a failure: the run
  // completed, its summaries dropped detail. Surface it so CI logs show when
  // a bench outgrows the span or flight-recorder capacity.
  if (dropped->as_number() > 0) {
    std::fprintf(stderr,
                 "check_report: warning: %.0f spans dropped (span buffer "
                 "saturated; deepest traces are incomplete)\n",
                 dropped->as_number());
  }
  const obs::Json* dropped_events = report.Find("dropped_events");
  if (dropped_events != nullptr && dropped_events->is_number() &&
      dropped_events->as_number() > 0) {
    std::fprintf(stderr,
                 "check_report: warning: %.0f flight-recorder events dropped "
                 "(event buffer saturated; traces are truncated)\n",
                 dropped_events->as_number());
  }

#ifndef HYPERM_OBS_DISABLED
  CHECK_REPORT(named >= 10, "expected >= 10 named metrics");
  // Build spans come from HyperMNetwork::Build, which always gauges
  // build.total_items. Channel-only runs (bench_channel --scale) never build
  // a network and legitimately carry no build span.
  const obs::Json* gauges_group = metrics->Find("gauges");
  const bool built_network =
      gauges_group != nullptr && gauges_group->Find("build.total_items") != nullptr;
  if (built_network) {
    const obs::Json* build = FindSpan(*spans, "build");
    CHECK_REPORT(build != nullptr, "missing 'build' span");
    const obs::Json* publish = FindSpan(*spans, "build/publish");
    CHECK_REPORT(publish != nullptr, "missing 'build/publish' span");
    const obs::Json* parent = publish->Find("parent");
    const obs::Json* build_id = build->Find("id");
    CHECK_REPORT(parent != nullptr && build_id != nullptr &&
                     static_cast<int>(parent->as_number()) ==
                         static_cast<int>(build_id->as_number()),
                 "'build/publish' must nest under 'build'");
  }
  // Build-only benches legitimately have no query spans; demand them exactly
  // when the run's counters say queries were served.
  const obs::Json* counters = metrics->Find("counters");
  const bool ran_queries = counters->Find("query.range_count") != nullptr ||
                           counters->Find("query.knn_count") != nullptr;
  if (ran_queries) {
    CHECK_REPORT(FindSpan(*spans, "query/range") != nullptr ||
                     FindSpan(*spans, "query/knn") != nullptr,
                 "missing a query span (query/range or query/knn)");
    CHECK_REPORT(FindSpan(*spans, "query/layer0") != nullptr,
                 "missing per-layer span query/layer0");
  }
#endif

  if (!baseline_path.empty()) {
#ifdef HYPERM_OBS_DISABLED
    // Without instrumentation the report carries no metric values to diff.
    std::printf("check_report: obs disabled, skipping baseline diff\n");
#else
    Result<obs::Json> baseline_root = LoadJson(baseline_path);
    if (!baseline_root.ok()) {
      std::fprintf(stderr, "check_report: baseline: %s\n",
                   baseline_root.status().ToString().c_str());
      return 1;
    }
    Result<obs::MetricsSnapshot> baseline =
        obs::MetricsFromJson(baseline_root.value());
    if (!baseline.ok()) {
      std::fprintf(stderr, "check_report: baseline: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    const CheckConfig config = ParseCheckConfig(baseline_root.value());
    const int violations =
        DiffAgainstBaseline(snapshot.value(), baseline.value(), config);
    if (violations > 0) {
      std::fprintf(stderr, "check_report: %d baseline violation(s) vs %s\n",
                   violations, baseline_path.c_str());
      return 1;
    }
    std::printf("check_report: baseline %s matched\n", baseline_path.c_str());
#endif
  }

  std::printf("check_report: %s OK (%zu metrics, %zu spans)\n", path.c_str(),
              named, spans->items().size());
  return 0;
}

}  // namespace
}  // namespace hyperm

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr, "usage: check_report <report.json> [baseline.json]\n");
    return 2;
  }
  return hyperm::Run(argv[1], argc == 3 ? argv[2] : "");
}
