// Protocol-comparison sweep: oracle routing over the legacy stretch MAC vs
// AODV discovery over CSMA/CA, crossed with mobility speed and offered load,
// at the radio-channel level (no overlay above). Fully seeded and
// deterministic; the JSON report is diffed against
// bench/baselines/BENCH_routing.json in CI and --csv= emits the raw matrix.
//
// Both protocol stacks see byte-identical workloads per cell: the topology,
// mobility trajectory and traffic stream derive from the same seeds, so every
// difference in the matrix is attributable to the MAC + routing swap. The
// binary enforces the seam's acceptance criterion in-process: at the sweep's
// mobility speeds, AODV+CSMA must sustain at least 90% of the oracle's
// delivery ratio at every offered load — route staleness and contention are
// allowed to cost airtime and latency, never correctness.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "channel/radio_channel.h"
#include "obs/metrics.h"
#include "sim/stats.h"

using namespace hyperm;

namespace {

struct CellResult {
  std::string proto;
  double speed_m_per_s = 0.0;
  int load_per_tick = 0;
  int sent = 0;
  int delivered = 0;
  int unreachable = 0;
  int mac_dropped = 0;
  double delivery_ratio = 0.0;
  double control_frames_per_msg = 0.0;
  double control_bytes_per_msg = 0.0;
  double mean_stretch = 0.0;  // delivered frames / oracle hop count
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t discoveries = 0;
  uint64_t route_errors = 0;
  uint64_t mac_collisions = 0;
  uint64_t mac_retransmits = 0;
};

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Field side for a ~12-neighbour unit-disk graph: mostly connected, with
/// genuine splits once mobility stirs it.
double FieldSide(int num_nodes, double range_m) {
  constexpr double kTargetDegree = 12.0;
  return std::sqrt(static_cast<double>(num_nodes) * 3.14159265358979323846 *
                   range_m * range_m / kTargetDegree);
}

CellResult RunCell(bool aodv_csma, int num_nodes, double speed_m_per_s,
                   int load_per_tick, int ticks, uint64_t seed) {
  CellResult cell;
  cell.proto = aodv_csma ? "aodv" : "oracle";
  cell.speed_m_per_s = speed_m_per_s;
  cell.load_per_tick = load_per_tick;

  sim::NetworkStats stats;
  channel::ChannelOptions options;
  options.field.field_size_m = FieldSide(num_nodes, 60.0);
  options.field.radio_range_m = 60.0;
  options.field.max_placement_attempts = 5000;
  options.tick_ms = 100.0;
  options.speed_m_per_s = speed_m_per_s;
  options.bandwidth_bytes_per_ms = 1000.0;
  options.tx_overhead_ms = 1.0;
  options.seed = seed;
  if (aodv_csma) {
    options.mac.kind = channel::MacOptions::Kind::kCsmaCa;
    options.routing.kind = route::RoutingOptions::Kind::kAodv;
  }
  Result<std::unique_ptr<channel::RadioChannel>> radio_result =
      channel::RadioChannel::Create(num_nodes, options, &stats);
  if (!radio_result.ok()) {
    std::fprintf(stderr, "channel: %s\n",
                 radio_result.status().ToString().c_str());
    std::exit(1);
  }
  const std::unique_ptr<channel::RadioChannel> radio =
      std::move(radio_result).value();

  // The traffic stream is a function of (seed) alone: both protocol stacks
  // see the same (src, dst, instant) sequence and the same mobility walk.
  Rng traffic(MixSeed(seed, 7));
  std::vector<double> latencies;
  double stretch_sum = 0.0;
  int stretch_count = 0;
  sim::TimeMs now = 0.0;
  for (int tick = 0; tick < ticks; ++tick) {
    if (tick > 0) {
      radio->Step();
      now += options.tick_ms;
    }
    for (int m = 0; m < load_per_tick; ++m) {
      net::Message message;
      message.src = static_cast<int>(traffic.UniformInt(0, num_nodes - 1));
      message.dst = static_cast<int>(traffic.UniformInt(0, num_nodes - 1));
      if (message.dst == message.src) message.dst = (message.dst + 1) % num_nodes;
      message.bytes = 256;
      message.cls = sim::TrafficClass::kQuery;
      const int oracle_hops = radio->topology().PathHops(message.src, message.dst);
      const net::ChannelTransmission tx = radio->Transmit(message, now);
      ++cell.sent;
      if (!tx.reachable) {
        ++cell.unreachable;
      } else if (tx.mac_dropped) {
        ++cell.mac_dropped;
      } else {
        ++cell.delivered;
        latencies.push_back(tx.latency_ms);
        if (oracle_hops > 0 && oracle_hops != manet::kUnreachableHops) {
          stretch_sum += static_cast<double>(tx.radio_hops) /
                         static_cast<double>(oracle_hops);
          ++stretch_count;
        }
      }
    }
  }

  const route::RoutingCounters& rc = radio->router().counters();
  const channel::MacCounters& mc = radio->mac().counters();
  cell.delivery_ratio =
      cell.sent > 0 ? static_cast<double>(cell.delivered) / cell.sent : 0.0;
  cell.control_frames_per_msg =
      cell.sent > 0 ? static_cast<double>(rc.control_frames) / cell.sent : 0.0;
  cell.control_bytes_per_msg =
      cell.sent > 0 ? static_cast<double>(rc.control_bytes) / cell.sent : 0.0;
  cell.mean_stretch = stretch_count > 0 ? stretch_sum / stretch_count : 0.0;
  cell.p50_ms = Quantile(latencies, 0.50);
  cell.p90_ms = Quantile(latencies, 0.90);
  cell.p99_ms = Quantile(latencies, 0.99);
  cell.discoveries = rc.discoveries;
  cell.route_errors = rc.route_errors;
  cell.mac_collisions = mc.collisions;
  cell.mac_retransmits = mc.retransmits;
  return cell;
}

void PublishCell(const CellResult& cell) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  char key[128];
  const int speed = static_cast<int>(cell.speed_m_per_s);
  const auto set = [&](const char* metric, double value) {
    std::snprintf(key, sizeof(key), "routing.%s.v%d_l%d.%s", cell.proto.c_str(),
                  speed, cell.load_per_tick, metric);
    reg.GetGauge(key).Set(value);
  };
  set("delivery_ratio", cell.delivery_ratio);
  set("control_frames_per_msg", cell.control_frames_per_msg);
  set("control_bytes_per_msg", cell.control_bytes_per_msg);
  set("stretch", cell.mean_stretch);
  set("p50_ms", cell.p50_ms);
  set("p90_ms", cell.p90_ms);
  set("p99_ms", cell.p99_ms);
  set("mac_dropped", static_cast<double>(cell.mac_dropped));
  set("unreachable", static_cast<double>(cell.unreachable));
}

std::string CsvPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv=", 6) == 0) return std::string(argv[i] + 6);
  }
  return std::string();
}

int WriteCsv(const std::string& path, const std::vector<CellResult>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "csv: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "proto,speed_m_per_s,load_per_tick,sent,delivered,unreachable,"
               "mac_dropped,delivery_ratio,control_frames_per_msg,"
               "control_bytes_per_msg,stretch,p50_ms,p90_ms,p99_ms,"
               "discoveries,route_errors,mac_collisions,mac_retransmits\n");
  for (const CellResult& c : cells) {
    std::fprintf(f, "%s,%.0f,%d,%d,%d,%d,%d,%.6f,%.4f,%.2f,%.4f,%.3f,%.3f,%.3f,"
                 "%llu,%llu,%llu,%llu\n",
                 c.proto.c_str(), c.speed_m_per_s, c.load_per_tick, c.sent,
                 c.delivered, c.unreachable, c.mac_dropped, c.delivery_ratio,
                 c.control_frames_per_msg, c.control_bytes_per_msg,
                 c.mean_stretch, c.p50_ms, c.p90_ms, c.p99_ms,
                 static_cast<unsigned long long>(c.discoveries),
                 static_cast<unsigned long long>(c.route_errors),
                 static_cast<unsigned long long>(c.mac_collisions),
                 static_cast<unsigned long long>(c.mac_retransmits));
  }
  std::fclose(f);
  std::printf("csv matrix written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  (void)bench::ArmFlightRecorder(argc, argv);
  bench::PrintHeader("Routing", "oracle+legacy vs AODV+CSMA protocol matrix",
                     paper);

  const int num_nodes = paper ? 100 : 60;
  const int ticks = paper ? 100 : 40;
  const uint64_t seed = 4242;
  const std::vector<double> speeds = {0.0, 10.0, 25.0};
  const std::vector<int> loads = paper ? std::vector<int>{4, 16}
                                       : std::vector<int>{2, 8};

  std::printf("%d nodes, %d ticks per cell, %.0f m field\n\n", num_nodes,
              ticks, FieldSide(num_nodes, 60.0));
  std::printf("%-8s %6s %5s %9s %9s %8s %8s %9s %9s\n", "proto", "speed",
              "load", "delivery", "ctl/msg", "stretch", "p50 ms", "p90 ms",
              "p99 ms");

  std::vector<CellResult> cells;
  for (double speed : speeds) {
    for (int load : loads) {
      for (bool aodv : {false, true}) {
        CellResult cell = RunCell(aodv, num_nodes, speed, load, ticks, seed);
        std::printf("%-8s %6.0f %5d %9.3f %9.2f %8.3f %8.2f %9.2f %9.2f\n",
                    cell.proto.c_str(), speed, load, cell.delivery_ratio,
                    cell.control_frames_per_msg, cell.mean_stretch, cell.p50_ms,
                    cell.p90_ms, cell.p99_ms);
        PublishCell(cell);
        cells.push_back(std::move(cell));
      }
    }
  }

  // Acceptance criterion: at every mobility cell (speed > 0), AODV over
  // CSMA/CA keeps >= 90% of the oracle's delivery ratio at equal load.
  // Staleness and contention may tax latency and airtime only.
  bool pass = true;
  std::printf("\nacceptance: AODV delivery >= 0.90 x oracle at mobility speeds\n");
  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    const CellResult& oracle = cells[i];
    const CellResult& aodv = cells[i + 1];
    if (oracle.speed_m_per_s <= 0.0) continue;
    const double floor = 0.90 * oracle.delivery_ratio;
    const bool ok = aodv.delivery_ratio + 1e-12 >= floor;
    std::printf("  v%.0f l%d: aodv %.3f vs floor %.3f (oracle %.3f) %s\n",
                oracle.speed_m_per_s, oracle.load_per_tick,
                aodv.delivery_ratio, floor, oracle.delivery_ratio,
                ok ? "ok" : "FAIL");
    if (!ok) pass = false;
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: AODV+CSMA delivery ratio below 90%% of oracle\n");
    return 1;
  }

  const std::string csv = CsvPath(argc, argv);
  if (!csv.empty() && WriteCsv(csv, cells) != 0) return 1;

  bench::WriteTraceArtifacts(argc, argv);
  bench::WriteBenchReport(argc, argv, "bench_routing");
  return 0;
}
