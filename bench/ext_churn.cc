// Extension: overlay maintenance under node churn.
//
// The paper targets short-lived sessions and does not evaluate node
// departures; the CAN substrate here implements the full takeover protocol
// (merge with a sibling neighbour, or free a node by merging the deepest
// sibling pair). This bench measures what churn costs and proves the
// queries keep their guarantees while nodes leave: published clusters stay
// discoverable throughout.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "can/can_overlay.h"
#include "common/rng.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = paper ? 100 : 64;
  bench::PrintHeader("Extension", "CAN maintenance cost and safety under churn",
                     paper);

  sim::NetworkStats stats;
  Rng rng(17);
  auto can = can::CanOverlay::Build(2, nodes, &stats, rng).value();

  // Publish a working set of spheres.
  std::vector<overlay::PublishedCluster> all;
  for (uint64_t id = 1; id <= 200; ++id) {
    overlay::PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.1)};
    c.owner_peer = static_cast<int>(id % static_cast<uint64_t>(nodes));
    c.items = 5;
    c.cluster_id = id;
    if (!can->Insert(c, 0).ok()) return 1;
    all.push_back(c);
  }

  auto verify = [&]() -> int {
    overlay::NodeId origin = 0;
    while (!can->active(origin)) ++origin;
    int missed = 0;
    Rng query_rng(7);
    for (int q = 0; q < 60; ++q) {
      geom::Sphere query{{query_rng.NextDouble(), query_rng.NextDouble()},
                         query_rng.Uniform(0.0, 0.2)};
      Result<overlay::RangeQueryResult> result = can->RangeQuery(query, origin);
      if (!result.ok()) return -1;
      std::set<uint64_t> found;
      for (const auto& c : result->matches) found.insert(c.cluster_id);
      for (const auto& c : all) {
        if (c.sphere.Intersects(query) && !found.count(c.cluster_id)) ++missed;
      }
    }
    return missed;
  };

  std::printf("%-16s %14s %18s %12s\n", "nodes remaining", "maint. hops",
              "maint. bytes (KB)", "missed");
  std::printf("%-16d %14s %18s %12d\n", nodes, "-", "-", verify());
  const int rounds = 5;
  const int departures_per_round = nodes / 8;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t hops_before = stats.hops(sim::TrafficClass::kJoin);
    const uint64_t bytes_before = stats.bytes(sim::TrafficClass::kJoin);
    for (int i = 0; i < departures_per_round; ++i) {
      overlay::NodeId victim =
          static_cast<overlay::NodeId>(rng.NextIndex(static_cast<uint64_t>(nodes)));
      while (!can->active(victim)) {
        victim = static_cast<overlay::NodeId>(
            rng.NextIndex(static_cast<uint64_t>(nodes)));
      }
      if (!can->Leave(victim).ok()) return 1;
    }
    const int missed = verify();
    if (missed < 0) return 1;
    std::printf("%-16d %14llu %18.1f %12d\n", can->num_active_nodes(),
                static_cast<unsigned long long>(stats.hops(sim::TrafficClass::kJoin) -
                                                hops_before),
                static_cast<double>(stats.bytes(sim::TrafficClass::kJoin) -
                                    bytes_before) /
                    1024.0,
                missed);
  }
  std::printf("\nexpected shape: bounded per-round maintenance traffic and zero\n"
              "missed clusters at every churn level (takeover re-homes state)\n");
  return 0;
}
