// Extension: overlay maintenance under node churn.
//
// The paper targets short-lived sessions and does not evaluate node
// departures; the CAN substrate here implements the full takeover protocol
// (merge with a sibling neighbour, or free a node by merging the deepest
// sibling pair). This bench measures what churn costs and proves the
// queries keep their guarantees while nodes leave: published clusters stay
// discoverable throughout.

#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "can/can_overlay.h"
#include "common/rng.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "obs/metrics.h"

using namespace hyperm;

namespace {

// Mean range recall of a fixed query workload against the exact oracle; all
// queries issued from peer 0, which stays up in every fault plan below.
double MeanRecall(bench::EffectivenessBed& bed, const core::FlatIndex& oracle,
                  double* mean_latency_ms = nullptr) {
  const int num_queries = 12;
  std::vector<core::PrecisionRecall> results;
  double latency = 0.0;
  for (int q = 0; q < num_queries; ++q) {
    const size_t index = (static_cast<size_t>(q) * 173 + 19) % bed.dataset.size();
    const Vector& query = bed.dataset.items[index];
    const double eps = oracle.KnnRadius(query, 25);
    core::RangeQueryInfo info;
    Result<std::vector<core::ItemId>> retrieved =
        bed.network->RangeQuery(query, eps, /*querying_peer=*/0, -1, &info);
    if (!retrieved.ok()) {
      std::fprintf(stderr, "%s\n", retrieved.status().ToString().c_str());
      std::exit(1);
    }
    results.push_back(core::Evaluate(*retrieved, oracle.RangeSearch(query, eps)));
    latency += info.latency_ms;
  }
  if (mean_latency_ms != nullptr) latency /= num_queries;
  if (mean_latency_ms != nullptr) *mean_latency_ms = latency;
  return core::Summarize(results).mean_recall;
}

// Part 2: data dissemination under MANET faults. Sweeps packet loss x
// simultaneous peer crashes on the unreliable transport and reports recall
// while the faults are live, recall after the soft-state republish healed
// the index, and what the ARQ layer spent masking the loss.
int RunFaultSweep(bool paper) {
  std::printf("\n==============================================================\n");
  std::printf("Part 2 — recall under loss x crashes (unreliable transport)\n");
  std::printf("==============================================================\n");
  std::printf("%-6s %-8s %9s %9s %9s %12s %9s %9s %9s\n", "loss", "crashes",
              "fresh", "during", "healed", "latency ms", "retries", "dead",
              "expired");
  for (const double loss : {0.0, 0.05, 0.1, 0.2}) {
    for (const int crashes : {0, 4}) {
      core::HyperMOptions options;
      options.net.unreliable = true;
      options.net.faults.loss_rate = loss;
      options.net.summary_ttl_ms = 2000.0;      // sweeps every 1000 ms
      options.net.republish_period_ms = 1000.0;
      for (int c = 0; c < crashes; ++c) {
        const int peer = 1 + 2 * c;  // peer 0 stays up (it issues the queries)
        options.net.faults.peer_events.push_back({100.0, peer, false});
        options.net.faults.peer_events.push_back({2600.0, peer, true});
      }
      auto bed = bench::BuildEffectivenessBed(
          paper, options, /*seed=*/606,
          /*num_objects_override=*/paper ? 350 : 120);
      const core::FlatIndex oracle(bed->dataset);

      const double fresh = MeanRecall(*bed, oracle);
      bed->network->AdvanceTo(150.0);  // crashes applied
      double latency_during = 0.0;
      const double during = MeanRecall(*bed, oracle, &latency_during);
      // Rejoin (2600) + republish rounds with everyone up (3000, 4000) have
      // passed: the index is as healed as soft state makes it.
      bed->network->AdvanceTo(4100.0);
      const double healed = MeanRecall(*bed, oracle);

      const net::TransportCounters& tc = bed->network->transport().counters();
      const core::SoftStateCounters& ss = bed->network->soft_state();
      std::printf("%-6.2f %-8d %9.3f %9.3f %9.3f %12.1f %9llu %9llu %9llu\n",
                  loss, crashes, fresh, during, healed, latency_during,
                  static_cast<unsigned long long>(tc.retries),
                  static_cast<unsigned long long>(tc.dead_letters),
                  static_cast<unsigned long long>(ss.summaries_expired));

      const std::string cell = "_l" + std::to_string(static_cast<int>(loss * 100)) +
                               "_c" + std::to_string(crashes);
      obs::MetricsRegistry::Global().GetGauge("ext_churn.recall_during" + cell)
          .Set(during);
      obs::MetricsRegistry::Global().GetGauge("ext_churn.recall_healed" + cell)
          .Set(healed);
      obs::MetricsRegistry::Global().GetGauge("ext_churn.retries" + cell)
          .Set(static_cast<double>(tc.retries));
    }
  }
  std::printf("\nexpected shape: retries hold 'fresh'/'healed' recall near the\n"
              "loss-free row at every loss level; 'during' dips with crashes\n"
              "(crashed peers' items are unreachable) and recovers after\n"
              "rejoin + republish; retry traffic grows with the loss rate\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = paper ? 100 : 64;
  bench::PrintHeader("Extension", "CAN maintenance cost and safety under churn",
                     paper);

  sim::NetworkStats stats;
  Rng rng(17);
  auto can = can::CanOverlay::Build(2, nodes, &stats, rng).value();

  // Publish a working set of spheres.
  std::vector<overlay::PublishedCluster> all;
  for (uint64_t id = 1; id <= 200; ++id) {
    overlay::PublishedCluster c;
    c.sphere = geom::Sphere{{rng.NextDouble(), rng.NextDouble()},
                            rng.Uniform(0.0, 0.1)};
    c.owner_peer = static_cast<int>(id % static_cast<uint64_t>(nodes));
    c.items = 5;
    c.cluster_id = id;
    if (!can->Insert(c, 0).ok()) return 1;
    all.push_back(c);
  }

  auto verify = [&]() -> int {
    overlay::NodeId origin = 0;
    while (!can->active(origin)) ++origin;
    int missed = 0;
    Rng query_rng(7);
    for (int q = 0; q < 60; ++q) {
      geom::Sphere query{{query_rng.NextDouble(), query_rng.NextDouble()},
                         query_rng.Uniform(0.0, 0.2)};
      Result<overlay::RangeQueryResult> result = can->RangeQuery(query, origin);
      if (!result.ok()) return -1;
      std::set<uint64_t> found;
      for (const auto& c : result->matches) found.insert(c.cluster_id);
      for (const auto& c : all) {
        if (c.sphere.Intersects(query) && !found.count(c.cluster_id)) ++missed;
      }
    }
    return missed;
  };

  std::printf("%-16s %14s %18s %12s\n", "nodes remaining", "maint. hops",
              "maint. bytes (KB)", "missed");
  std::printf("%-16d %14s %18s %12d\n", nodes, "-", "-", verify());
  const int rounds = 5;
  const int departures_per_round = nodes / 8;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t hops_before = stats.hops(sim::TrafficClass::kJoin);
    const uint64_t bytes_before = stats.bytes(sim::TrafficClass::kJoin);
    for (int i = 0; i < departures_per_round; ++i) {
      overlay::NodeId victim =
          static_cast<overlay::NodeId>(rng.NextIndex(static_cast<uint64_t>(nodes)));
      while (!can->active(victim)) {
        victim = static_cast<overlay::NodeId>(
            rng.NextIndex(static_cast<uint64_t>(nodes)));
      }
      if (!can->Leave(victim).ok()) return 1;
    }
    const int missed = verify();
    if (missed < 0) return 1;
    std::printf("%-16d %14llu %18.1f %12d\n", can->num_active_nodes(),
                static_cast<unsigned long long>(stats.hops(sim::TrafficClass::kJoin) -
                                                hops_before),
                static_cast<double>(stats.bytes(sim::TrafficClass::kJoin) -
                                    bytes_before) /
                    1024.0,
                missed);
  }
  std::printf("\nexpected shape: bounded per-round maintenance traffic and zero\n"
              "missed clusters at every churn level (takeover re-homes state)\n");
  if (RunFaultSweep(paper) != 0) return 1;
  bench::WriteBenchReport(argc, argv, "ext_churn");
  return 0;
}
