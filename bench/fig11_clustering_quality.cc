// Figure 11: clustering performance in different vector spaces.
//
// "Cohesion is the average distance of elements within the same cluster and
// separation measures the average distance between the centroids of
// different clusters. Thus, the proportion between them is a measure of the
// 'goodness' of the clusters. Figure 11 shows that the clusters created in
// the first three wavelet vector spaces are tighter and better separated
// than clusters created by the same algorithm in the original data space...
// as the level of detail increases, clustering stops performing as well."
//
// We run identical k-means in the original space and in every wavelet
// subspace and report cohesion/separation (lower = better clustering); this
// is the analysis that justifies the four-layer default.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "data/histogram_generator.h"
#include "data/markov_generator.h"
#include "wavelet/haar.h"
#include "wavelet/level.h"

using namespace hyperm;

namespace {

// Quality ratio of k-means in one projected space.
double SpaceQuality(const std::vector<Vector>& points, uint64_t seed) {
  Rng rng(seed);
  cluster::KMeansOptions options;
  options.k = 10;
  Result<cluster::KMeansResult> result = cluster::KMeans(points, options, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return cluster::QualityRatio(points, result->assignments, result->clusters);
}

void AnalyzeDataset(const std::string& name, const data::Dataset& dataset) {
  const int m = static_cast<int>(std::log2(static_cast<double>(dataset.dim())));
  std::printf("\n--- %s (%zu items, dim %zu) ---\n", name.c_str(), dataset.size(),
              dataset.dim());
  std::printf("%-10s %6s %22s\n", "space", "dim", "cohesion/separation");

  std::printf("%-10s %6zu %22.4f\n", "original", dataset.dim(),
              SpaceQuality(dataset.items, 42));

  // Project the whole dataset into every wavelet subspace.
  std::vector<wavelet::Level> levels = wavelet::DefaultLevels(m, m + 1);
  for (const wavelet::Level& level : levels) {
    std::vector<Vector> projected;
    projected.reserve(dataset.size());
    for (const Vector& item : dataset.items) {
      Result<wavelet::Pyramid> pyramid = wavelet::Decompose(item);
      if (!pyramid.ok()) {
        std::fprintf(stderr, "%s\n", pyramid.status().ToString().c_str());
        std::exit(1);
      }
      projected.push_back(wavelet::Project(*pyramid, level));
    }
    std::printf("%-10s %6zu %22.4f\n", level.name().c_str(), level.dim(),
                SpaceQuality(projected, 42));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  bench::PrintHeader("Figure 11", "clustering quality per vector space", paper);

  Rng rng(404);
  data::HistogramOptions histogram_options;
  histogram_options.num_objects = paper ? 1000 : 300;
  histogram_options.views_per_object = 12;
  histogram_options.dim = 64;
  Result<data::Dataset> histograms = data::GenerateHistograms(histogram_options, rng);
  if (!histograms.ok()) {
    std::fprintf(stderr, "%s\n", histograms.status().ToString().c_str());
    return 1;
  }
  AnalyzeDataset("ALOI-like histograms", *histograms);

  data::MarkovOptions markov_options;
  markov_options.count = paper ? 20000 : 4000;
  markov_options.dim = 512;
  markov_options.num_families = 25;
  Result<data::Dataset> markov = data::GenerateMarkov(markov_options, rng);
  if (!markov.ok()) {
    std::fprintf(stderr, "%s\n", markov.status().ToString().c_str());
    return 1;
  }
  AnalyzeDataset("Markov traces", *markov);

  std::printf("\nexpected shape: the first few wavelet spaces (A, D0, D1) beat the\n"
              "original space; ratios degrade again at the deepest detail levels\n");
  return 0;
}
