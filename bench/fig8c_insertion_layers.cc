// Figure 8c: average number of hops per item insertion, as a function of the
// number of layers in the overlay (the paper plots this on a log scale).
//
// Hyper-M's publication cost grows with the number of wavelet overlays but
// stays far below inserting every item into the original 512-dimensional
// CAN; the 2-dimensional CAN reference line is included as in the paper.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/baseline.h"
#include "hyperm/network.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = 100;
  const int items_per_node = paper ? 1000 : 500;
  const int dim = 512;
  bench::PrintHeader("Figure 8c", "avg hops per item insertion vs overlay layers",
                     paper);
  std::printf("nodes=%d items/node=%d dim=%d clusters/peer=10\n\n", nodes,
              items_per_node, dim);

  Rng data_rng(404);
  data::MarkovOptions data_options;
  data_options.count = nodes * items_per_node;
  data_options.dim = dim;
  data_options.num_families = 25;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, data_rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  data::AssignmentOptions assign_options;
  assign_options.num_peers = nodes;
  assign_options.num_interest_classes = 25;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, data_rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  const int total_items = static_cast<int>(dataset->size());
  std::printf("%-10s %18s\n", "layers", "hops/item");
  for (int layers : {1, 2, 3, 4, 5, 6}) {
    Rng rng(42);
    core::HyperMOptions options;
    options.num_layers = layers;
    options.clusters_per_peer = 10;
    Result<std::unique_ptr<core::HyperMNetwork>> net =
        core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    const sim::NetworkStats& stats = (*net)->stats();
    const double hyperm =
        static_cast<double>(stats.hops(sim::TrafficClass::kInsert) +
                            stats.hops(sim::TrafficClass::kReplicate)) /
        total_items;
    std::printf("Hyper-M %-2d %18.3f\n", layers, hyperm);
  }

  for (size_t index_dims : {size_t{0}, size_t{2}}) {
    Rng rng(index_dims == 0 ? 11u : 12u);
    core::ItemBaselineOptions options;
    options.index_dims = index_dims;
    Result<std::unique_ptr<core::CanItemBaseline>> baseline =
        core::CanItemBaseline::Build(*dataset, *assignment, options, rng);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %18.3f\n", index_dims == 0 ? "CAN-512d" : "CAN-2d",
                (*baseline)->average_insert_hops_per_item());
  }
  std::printf("\nexpected shape (log scale in the paper): Hyper-M rises roughly\n"
              "linearly with layer count yet stays well under both CAN baselines\n");
  bench::WriteBenchReport(argc, argv, "fig8c_insertion_layers",
                          {{"nodes", std::to_string(nodes)},
                           {"items_per_node", std::to_string(items_per_node)}});
  return 0;
}
