// Microbenchmarks (google-benchmark) of the computational kernels behind
// Hyper-M: the Haar pyramid, k-means, the sphere-intersection geometry of
// Eqs. 5-8, and CAN greedy routing. These quantify the "could be done
// offline / negligible" claims the paper makes about local computation.
//
// With --json=<path> the binary additionally runs one small instrumented
// end-to-end sample (Build + range + k-NN query) and writes the global
// metrics/span report — the bench-smoke ctest fixture validates that file.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "can/can_overlay.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "data/markov_generator.h"
#include "geom/radius_estimator.h"
#include "geom/sphere_volume.h"
#include "vec/matrix.h"
#include "vec/vector.h"
#include "wavelet/haar.h"
#include "wavelet/transform.h"

namespace hyperm {
namespace {

Vector RandomVector(size_t dim, Rng& rng) {
  Vector x(dim);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  return x;
}

void BM_HaarDecompose(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Vector x = RandomVector(dim, rng);
  for (auto _ : state) {
    Result<wavelet::Pyramid> p = wavelet::Decompose(x);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HaarDecompose)->Arg(64)->Arg(512)->Arg(4096);

void BM_HaarRoundTrip(benchmark::State& state) {
  Rng rng(2);
  const Vector x = RandomVector(512, rng);
  for (auto _ : state) {
    Result<wavelet::Pyramid> p = wavelet::Decompose(x);
    Vector back = wavelet::Reconstruct(*p);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_HaarRoundTrip);

void BM_WaveletFamilies(benchmark::State& state) {
  const auto kind = static_cast<wavelet::WaveletKind>(state.range(0));
  Rng rng(2);
  const Vector x = RandomVector(512, rng);
  for (auto _ : state) {
    Result<wavelet::Pyramid> p = wavelet::DecomposeWith(kind, x);
    benchmark::DoNotOptimize(p);
  }
  state.SetLabel(wavelet::WaveletKindName(kind));
}
BENCHMARK(BM_WaveletFamilies)
    ->Arg(static_cast<int>(wavelet::WaveletKind::kHaarAveraging))
    ->Arg(static_cast<int>(wavelet::WaveletKind::kHaarOrthonormal))
    ->Arg(static_cast<int>(wavelet::WaveletKind::kDaubechies4));

void BM_KMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  Rng data_rng(3);
  std::vector<Vector> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) points.push_back(RandomVector(dim, data_rng));
  cluster::KMeansOptions options;
  options.k = 10;
  for (auto _ : state) {
    Rng rng(4);
    Result<cluster::KMeansResult> r = cluster::KMeans(points, options, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeans)->Args({200, 4})->Args({1000, 4})->Args({1000, 64});

// Reference full-scan kernel (options.pruned = false); the ratio against
// BM_KMeans on the same Args is the Hamerly-pruning speedup.
void BM_KMeansNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  Rng data_rng(3);
  std::vector<Vector> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) points.push_back(RandomVector(dim, data_rng));
  cluster::KMeansOptions options;
  options.k = 10;
  options.pruned = false;
  for (auto _ : state) {
    Rng rng(4);
    Result<cluster::KMeansResult> r = cluster::KMeans(points, options, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeansNaive)->Args({200, 4})->Args({1000, 4})->Args({1000, 64});

// AoS reference for the distance scan: one vec::SquaredDistance call per
// heap-allocated row of a std::vector<Vector>. The ratio against
// BM_SquaredDistanceBatch on the same Args is the SoA-layout speedup that
// peer scoring / k-means assignment / the flat oracle inherited.
void BM_SquaredDistanceAoS(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  Rng rng(10);
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(RandomVector(dim, rng));
  const Vector query = RandomVector(dim, rng);
  std::vector<double> out(rows.size());
  for (auto _ : state) {
    for (size_t r = 0; r < rows.size(); ++r) {
      out[r] = vec::SquaredDistance(rows[r], query);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(dim * sizeof(double)));
}
BENCHMARK(BM_SquaredDistanceAoS)->Args({1000, 64})->Args({1000, 512});

// SoA batch kernel over the same values in one contiguous buffer. Results
// are bit-identical to the AoS loop (see vec/matrix.h's contract).
void BM_SquaredDistanceBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  Rng rng(10);
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(RandomVector(dim, rng));
  const vec::Matrix m = vec::Matrix::FromRows(rows);
  const Vector query = RandomVector(dim, rng);
  std::vector<double> out(m.rows());
  for (auto _ : state) {
    vec::SquaredDistanceBatch(m, query, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(dim * sizeof(double)));
}
BENCHMARK(BM_SquaredDistanceBatch)->Args({1000, 64})->Args({1000, 512});

// End-to-end Build at a fixed dataset, swept over the pool size. On a
// single-core host the >1-thread rows only measure coordination overhead;
// the ratio is meaningful on multi-core hardware.
void BM_BuildNetwork(benchmark::State& state) {
  const int num_threads = static_cast<int>(state.range(0));
  Rng setup_rng(8);
  data::MarkovOptions data_options;
  data_options.count = 400;
  data_options.dim = 64;
  data_options.num_families = 8;
  auto dataset = data::GenerateMarkov(data_options, setup_rng).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  auto assignment = data::AssignByInterest(dataset, assign_options, setup_rng).value();
  core::HyperMOptions options;
  options.num_threads = num_threads;
  for (auto _ : state) {
    Rng rng(9);
    Result<std::unique_ptr<core::HyperMNetwork>> net =
        core::HyperMNetwork::Build(dataset, assignment, options, rng);
    benchmark::DoNotOptimize(net);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildNetwork)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CapVolumeFraction(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  double alpha = 0.1;
  for (auto _ : state) {
    alpha = alpha > 3.0 ? 0.1 : alpha + 0.001;
    benchmark::DoNotOptimize(geom::CapVolumeFraction(d, alpha));
  }
}
BENCHMARK(BM_CapVolumeFraction)->Arg(2)->Arg(16)->Arg(512);

void BM_SphereIntersectionFraction(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  double b = 0.0;
  for (auto _ : state) {
    b = b > 2.4 ? 0.0 : b + 0.001;
    benchmark::DoNotOptimize(geom::SphereIntersectionFraction(d, 1.0, 1.5, b));
  }
}
BENCHMARK(BM_SphereIntersectionFraction)->Arg(2)->Arg(16);

void BM_SolveRadiusForCount(benchmark::State& state) {
  Rng rng(5);
  std::vector<geom::ClusterView> clusters;
  for (int i = 0; i < 50; ++i) {
    clusters.push_back(geom::ClusterView{rng.Uniform(0.1, 1.0),
                                         rng.Uniform(0.0, 3.0),
                                         static_cast<int>(rng.UniformInt(1, 40))});
  }
  for (auto _ : state) {
    Result<double> eps = geom::SolveRadiusForCount(4, clusters, 25.0);
    benchmark::DoNotOptimize(eps);
  }
}
BENCHMARK(BM_SolveRadiusForCount);

void BM_CanRoute(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  sim::NetworkStats stats;
  Rng rng(6);
  auto can = can::CanOverlay::Build(dim, nodes, &stats, rng).value();
  Rng query_rng(7);
  for (auto _ : state) {
    Vector key(dim);
    for (double& v : key) v = query_rng.NextDouble();
    Result<can::RouteResult> r =
        can->Route(key, 0, sim::TrafficClass::kQuery, 64);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CanRoute)->Args({2, 100})->Args({4, 100})->Args({512, 100});

// Self-timed AoS-vs-SoA kernel sample for the exported report: per-row wall
// gauges (skipped by baseline diffs) plus the speedup ratio, which IS
// baseline-checked — both loops run in-process seconds apart, so the ratio
// is robust to machine load where absolute timings are not. A ratio
// collapsing towards 1.0 means the batch kernel lost its layout win.
void RunKernelBaselineSample() {
  constexpr int kRows = 1000;
  constexpr size_t kDim = 512;
  constexpr int kReps = 10;
  Rng rng(10);
  std::vector<Vector> rows;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) rows.push_back(RandomVector(kDim, rng));
  const vec::Matrix m = vec::Matrix::FromRows(rows);
  const Vector query = RandomVector(kDim, rng);
  std::vector<double> out(rows.size());
  double checksum = 0.0;

  double aos_best_ns = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::PhaseTimer timer;
    for (size_t r = 0; r < rows.size(); ++r) {
      out[r] = vec::SquaredDistance(rows[r], query);
    }
    const double ns = timer.ElapsedMs() * 1e6;
    if (rep == 0 || ns < aos_best_ns) aos_best_ns = ns;
    checksum += out.front() + out.back();
  }
  double soa_best_ns = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::PhaseTimer timer;
    vec::SquaredDistanceBatch(m, query, out.data());
    const double ns = timer.ElapsedMs() * 1e6;
    if (rep == 0 || ns < soa_best_ns) soa_best_ns = ns;
    checksum += out.front() + out.back();
  }
  if (checksum < 0.0) std::abort();  // keep the loops observable

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("kernels.aos_dim512_wall_ns_per_row").Set(aos_best_ns / kRows);
  reg.GetGauge("kernels.soa_dim512_wall_ns_per_row").Set(soa_best_ns / kRows);
  reg.GetGauge("kernels.soa_speedup_dim512")
      .Set(soa_best_ns > 0.0 ? aos_best_ns / soa_best_ns : 0.0);
}

// One tiny instrumented pipeline pass (Build + range query + k-NN query) so
// the exported report always carries the Build/query span tree and the full
// metric set, independent of which BM_* cases ran.
void RunInstrumentedSample() {
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Reset();
  core::HyperMOptions options;
  options.num_layers = 3;
  options.clusters_per_peer = 4;
  auto bed = bench::BuildEffectivenessBed(/*paper_scale=*/false, options,
                                          /*seed=*/606, /*num_objects_override=*/40);
  const Vector& query = bed->dataset.items.front();
  Result<std::vector<core::ItemId>> range =
      bed->network->RangeQuery(query, /*epsilon=*/0.25, /*querying_peer=*/0);
  if (!range.ok()) {
    std::fprintf(stderr, "sample range query: %s\n", range.status().ToString().c_str());
    std::exit(1);
  }
  core::KnnOptions knn_options;
  Result<std::vector<core::ItemId>> knn =
      bed->network->KnnQuery(query, /*k=*/5, knn_options, /*querying_peer=*/1);
  if (!knn.ok()) {
    std::fprintf(stderr, "sample knn query: %s\n", knn.status().ToString().c_str());
    std::exit(1);
  }
}

}  // namespace
}  // namespace hyperm

int main(int argc, char** argv) {
  // Split off the hyperm flags (--json=, --paper) before google-benchmark
  // sees the command line; it rejects flags it does not recognize.
  const std::string json_path = hyperm::bench::JsonPath(argc, argv);
  std::vector<char*> bm_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0 || arg == "--paper") continue;
    bm_argv.push_back(argv[i]);
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    hyperm::RunInstrumentedSample();  // resets the registry first
    hyperm::RunKernelBaselineSample();
    hyperm::bench::WriteBenchReport(argc, argv, "micro_kernels");
  }
  return 0;
}
