// Extension: physical MANET cost of overlay traffic.
//
// The paper counts overlay hops; in the motivating scenario every overlay
// hop is a multi-hop radio path across the room/train. CAN zone assignment
// is independent of geography, so overlay endpoints are uniform random node
// pairs and the expected physical multiplier is the mean pairwise hop count
// of the radio graph. This bench deploys both systems over the same physical
// field and reports physical transmissions, radio energy and dissemination
// makespan.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/baseline.h"
#include "hyperm/network.h"
#include "manet/topology.h"
#include "sim/dissemination.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = 50;
  const int items_per_node = paper ? 1000 : 200;
  bench::PrintHeader("Extension", "physical MANET cost of dissemination", paper);

  // Physical deployment: a 120 m hall, 35 m bluetooth-class range.
  Rng manet_rng(5);
  manet::TopologyOptions field;
  field.num_nodes = nodes;
  field.field_size_m = 120.0;
  field.radio_range_m = 35.0;
  Result<manet::ManetTopology> topology = manet::ManetTopology::Generate(field, manet_rng);
  if (!topology.ok()) {
    std::fprintf(stderr, "%s\n", topology.status().ToString().c_str());
    return 1;
  }
  const double multiplier = topology->MeanPairwiseHops();
  std::printf("field: %.0fx%.0f m, range %.0f m -> mean physical hops per overlay hop: %.2f\n\n",
              field.field_size_m, field.field_size_m, field.radio_range_m, multiplier);

  Rng data_rng(404);
  data::MarkovOptions data_options;
  data_options.count = nodes * items_per_node;
  data_options.dim = 512;
  data_options.num_families = 25;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, data_rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  data::AssignmentOptions assign_options;
  assign_options.num_peers = nodes;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, data_rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  // Hyper-M.
  Rng rng(42);
  core::HyperMOptions options;
  Result<std::unique_ptr<core::HyperMNetwork>> net =
      core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
    return 1;
  }
  const uint64_t hyperm_overlay_hops =
      (*net)->stats().hops(sim::TrafficClass::kInsert) +
      (*net)->stats().hops(sim::TrafficClass::kReplicate);
  const double hyperm_bytes_per_hop = sim::AverageInsertBytesPerHop((*net)->stats());

  // Per-item baseline.
  Rng baseline_rng(43);
  Result<std::unique_ptr<core::CanItemBaseline>> baseline =
      core::CanItemBaseline::Build(*dataset, *assignment, {}, baseline_rng);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  const uint64_t baseline_overlay_hops =
      (*baseline)->stats().hops(sim::TrafficClass::kInsert);
  const double baseline_bytes_per_hop =
      sim::AverageInsertBytesPerHop((*baseline)->stats());

  const sim::RadioEnergyModel radio;
  auto report = [&](const char* name, uint64_t overlay_hops, double bytes_per_hop) {
    const double physical = static_cast<double>(overlay_hops) * multiplier;
    const double energy_mj = physical * radio.HopEnergyNanojoules(
                                            static_cast<uint64_t>(bytes_per_hop)) *
                             1e-6;
    // Makespan: physical transmissions split evenly across peers publishing
    // in parallel.
    std::vector<uint64_t> per_peer(
        static_cast<size_t>(nodes),
        static_cast<uint64_t>(physical / static_cast<double>(nodes)));
    const double makespan = sim::ParallelMakespanMs(per_peer, bytes_per_hop);
    std::printf("%-14s %16llu %18.0f %14.1f %14.1f\n", name,
                static_cast<unsigned long long>(overlay_hops), physical, energy_mj,
                makespan / 1000.0);
  };

  std::printf("%-14s %16s %18s %14s %14s\n", "system", "overlay hops",
              "physical tx", "energy (mJ)", "makespan (s)");
  report("Hyper-M", hyperm_overlay_hops, hyperm_bytes_per_hop);
  report("per-item CAN", baseline_overlay_hops, baseline_bytes_per_hop);

  std::printf("\nexpected shape: the physical multiplier scales both systems\n"
              "equally; Hyper-M's advantage compounds through its tiny summary\n"
              "messages (energy and makespan gaps exceed the hop gap)\n");
  return 0;
}
