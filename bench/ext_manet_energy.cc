// Extension: physical MANET cost of overlay traffic.
//
// The paper counts overlay hops; in the motivating scenario every overlay
// hop is a multi-hop radio path across the room/train. CAN zone assignment
// is independent of geography, so overlay endpoints are uniform random node
// pairs and the expected physical multiplier is the mean pairwise hop count
// of the radio graph. This bench deploys both systems over the same physical
// field and reports physical transmissions, radio energy and dissemination
// makespan.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/baseline.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "manet/topology.h"
#include "sim/dissemination.h"

using namespace hyperm;

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale(argc, argv);
  const int nodes = 50;
  const int sweep_nodes = 16;  // Part-2 live-channel sweep scale
  const int items_per_node = paper ? 1000 : 200;
  bench::PrintHeader("Extension", "physical MANET cost of dissemination", paper);

  // Physical deployment: a 120 m hall, 35 m bluetooth-class range.
  Rng manet_rng(5);
  manet::TopologyOptions field;
  field.num_nodes = nodes;
  field.field_size_m = 120.0;
  field.radio_range_m = 35.0;
  Result<manet::ManetTopology> topology = manet::ManetTopology::Generate(field, manet_rng);
  if (!topology.ok()) {
    std::fprintf(stderr, "%s\n", topology.status().ToString().c_str());
    return 1;
  }
  const double multiplier = topology->MeanPairwiseHops();
  std::printf("field: %.0fx%.0f m, range %.0f m -> mean physical hops per overlay hop: %.2f\n\n",
              field.field_size_m, field.field_size_m, field.radio_range_m, multiplier);

  Rng data_rng(404);
  data::MarkovOptions data_options;
  data_options.count = nodes * items_per_node;
  data_options.dim = 512;
  data_options.num_families = 25;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, data_rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  data::AssignmentOptions assign_options;
  assign_options.num_peers = nodes;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, data_rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  // Hyper-M.
  Rng rng(42);
  core::HyperMOptions options;
  Result<std::unique_ptr<core::HyperMNetwork>> net =
      core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
    return 1;
  }
  const uint64_t hyperm_overlay_hops =
      (*net)->stats().hops(sim::TrafficClass::kInsert) +
      (*net)->stats().hops(sim::TrafficClass::kReplicate);
  const double hyperm_bytes_per_hop = sim::AverageInsertBytesPerHop((*net)->stats());

  // Per-item baseline.
  Rng baseline_rng(43);
  Result<std::unique_ptr<core::CanItemBaseline>> baseline =
      core::CanItemBaseline::Build(*dataset, *assignment, {}, baseline_rng);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  const uint64_t baseline_overlay_hops =
      (*baseline)->stats().hops(sim::TrafficClass::kInsert);
  const double baseline_bytes_per_hop =
      sim::AverageInsertBytesPerHop((*baseline)->stats());

  const sim::RadioEnergyModel radio;
  auto report = [&](const char* name, uint64_t overlay_hops, double bytes_per_hop) {
    const double physical = static_cast<double>(overlay_hops) * multiplier;
    const double energy_mj = physical * radio.HopEnergyNanojoules(
                                            static_cast<uint64_t>(bytes_per_hop)) *
                             1e-6;
    // Makespan: physical transmissions split evenly across peers publishing
    // in parallel.
    std::vector<uint64_t> per_peer(
        static_cast<size_t>(nodes),
        static_cast<uint64_t>(physical / static_cast<double>(nodes)));
    const double makespan = sim::ParallelMakespanMs(per_peer, bytes_per_hop);
    std::printf("%-14s %16llu %18.0f %14.1f %14.1f\n", name,
                static_cast<unsigned long long>(overlay_hops), physical, energy_mj,
                makespan / 1000.0);
  };

  std::printf("%-14s %16s %18s %14s %14s\n", "system", "overlay hops",
              "physical tx", "energy (mJ)", "makespan (s)");
  report("Hyper-M", hyperm_overlay_hops, hyperm_bytes_per_hop);
  report("per-item CAN", baseline_overlay_hops, baseline_bytes_per_hop);

  std::printf("\nexpected shape: the physical multiplier scales both systems\n"
              "equally; Hyper-M's advantage compounds through its tiny summary\n"
              "messages (energy and makespan gaps exceed the hop gap)\n");

  // --- Part 2: mobility sweep over the live radio channel ------------------
  //
  // The static analysis above converts overlay hops with a fixed multiplier;
  // the channel subsystem simulates the radio for real. Sweep node speed x
  // offered load over a deployed Hyper-M instance and report recall, mean
  // query latency, ARQ retries and radio energy (methodology: EXPERIMENTS.md).
  std::printf("\nmobility sweep (live radio channel, %d peers):\n", sweep_nodes);
  std::printf("%-12s %-8s %10s %14s %10s %14s %12s\n", "speed (m/s)", "load",
              "recall", "latency (ms)", "retries", "energy (mJ)", "disc. ticks");
  const double speeds[] = {0.0, 5.0, 25.0};
  const int loads[] = {1, 4};
  for (double speed : speeds) {
    for (int load : loads) {
      Rng sweep_rng(4242);
      data::MarkovOptions sweep_data_options;
      sweep_data_options.count = sweep_nodes * (paper ? 100 : 25);
      sweep_data_options.dim = 32;
      sweep_data_options.num_families = 8;
      Result<data::Dataset> sweep_dataset =
          data::GenerateMarkov(sweep_data_options, sweep_rng);
      if (!sweep_dataset.ok()) {
        std::fprintf(stderr, "%s\n", sweep_dataset.status().ToString().c_str());
        return 1;
      }
      data::AssignmentOptions sweep_assign;
      sweep_assign.num_peers = sweep_nodes;
      sweep_assign.num_interest_classes = 8;
      sweep_assign.min_peers_per_class = 4;
      sweep_assign.max_peers_per_class = 6;
      Result<data::PeerAssignment> sweep_assignment =
          data::AssignByInterest(*sweep_dataset, sweep_assign, sweep_rng);
      if (!sweep_assignment.ok()) {
        std::fprintf(stderr, "%s\n", sweep_assignment.status().ToString().c_str());
        return 1;
      }
      core::HyperMOptions sweep_options;
      sweep_options.net.unreliable = true;
      sweep_options.net.retry.adaptive = true;
      // Republish slowly enough that soft-state refresh stays well under the
      // radio's capacity; otherwise the transmit queues never drain and the
      // latency column measures backlog growth instead of burst queueing.
      sweep_options.net.summary_ttl_ms = 12000.0;
      sweep_options.net.republish_period_ms = 4000.0;
      sweep_options.channel.enabled = true;
      // Moderately sparse: mostly connected with intermittent mobility splits
      // (a fully sparse field at low speed partitions for many TTLs on end
      // and the recall column collapses to the island size).
      sweep_options.channel.field.field_size_m = 220.0;
      sweep_options.channel.field.radio_range_m = 70.0;
      sweep_options.channel.field.max_placement_attempts = 5000;
      sweep_options.channel.speed_m_per_s = speed;
      sweep_options.channel.bandwidth_bytes_per_ms = 1000.0;
      sweep_options.channel.tx_overhead_ms = 1.0;
      Result<std::unique_ptr<core::HyperMNetwork>> sweep_net =
          core::HyperMNetwork::Build(*sweep_dataset, *sweep_assignment,
                                     sweep_options, sweep_rng);
      if (!sweep_net.ok()) {
        std::fprintf(stderr, "%s\n", sweep_net.status().ToString().c_str());
        return 1;
      }
      core::HyperMNetwork& network = **sweep_net;
      network.AdvanceTo(network.radio_channel()->DrainedAtMs() + 10000.0);

      const core::FlatIndex oracle(*sweep_dataset);
      std::vector<core::PrecisionRecall> results;
      double latency_ms = 0.0;
      int issued = 0;
      const size_t n = sweep_dataset->size();
      const uint64_t retries_before = network.transport().counters().retries;
      const channel::RadioChannel* radio = network.radio_channel();
      for (int q = 0; q < 10; ++q) {
        const Vector& center = sweep_dataset->items[(static_cast<size_t>(q) * 17) % n];
        // Start each burst from drained queues so the latency column measures
        // the burst's own queueing, not leftover republish backlog.
        if (radio->DrainedAtMs() > network.now()) {
          network.AdvanceTo(radio->DrainedAtMs() + 1.0);
        }
        // Offered load: `load` identical queries issued back to back; every
        // copy after the first queues behind its predecessors.
        for (int rep = 0; rep < load; ++rep) {
          core::RangeQueryInfo info;
          Result<std::vector<core::ItemId>> r = network.RangeQuery(
              center, 0.8, (q + rep) % sweep_nodes, -1, &info);
          if (!r.ok()) {
            std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
            return 1;
          }
          results.push_back(core::Evaluate(*r, oracle.RangeSearch(center, 0.8)));
          latency_ms += info.latency_ms;
          ++issued;
        }
        network.AdvanceTo(network.now() + 500.0);
      }
      const uint64_t query_retries =
          network.transport().counters().retries - retries_before;
      std::printf("%-12.0f %-8d %10.3f %14.1f %10llu %14.1f %12llu\n", speed, load,
                  core::Summarize(results).mean_recall, latency_ms / issued,
                  static_cast<unsigned long long>(query_retries),
                  network.stats().total_energy_millijoules(),
                  static_cast<unsigned long long>(
                      network.radio_channel()->counters().disconnected_steps));
    }
  }
  std::printf("\nexpected shape: latency rises with offered load (transmit queues)\n"
              "and with speed (retries over flapping links); recall dips only\n"
              "when mobility splits the field faster than republish heals it\n");
  return 0;
}
