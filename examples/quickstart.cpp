// Quickstart: the smallest end-to-end Hyper-M deployment.
//
// Eight peers share 400 synthetic colour histograms. The example walks the
// full public API: generate data, assign it to peers by interest, build the
// per-level overlays (publication happens inside Build), then answer a range
// query and a k-NN query and compare them to exact centralized search.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "data/histogram_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

using namespace hyperm;

int main() {
  Rng rng(2026);

  // 1. Data: 50 objects x 8 views of 64-bin histograms (an ALOI-like shape).
  data::HistogramOptions data_options;
  data_options.num_objects = 50;
  data_options.views_per_object = 8;
  data_options.dim = 64;
  Result<data::Dataset> dataset = data::GenerateHistograms(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Peers: spread each interest class over a few of the 8 devices.
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 8;
  assign_options.num_interest_classes = 10;
  assign_options.min_peers_per_class = 2;
  assign_options.max_peers_per_class = 4;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment failed: %s\n",
                 assignment.status().ToString().c_str());
    return 1;
  }

  // 3. Hyper-M: four wavelet layers (A, D0, D1, D2), ten clusters per peer.
  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "network build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  core::HyperMNetwork& net = **network;

  std::printf("Hyper-M quickstart\n");
  std::printf("  peers=%d layers=%d items=%d dim=%zu\n", net.num_peers(),
              net.num_layers(), net.total_items(), net.data_dim());
  std::printf("  setup traffic: %s\n", net.stats().Summary().c_str());

  // 4. Ground truth oracle for evaluation.
  const core::FlatIndex oracle(*dataset);
  const Vector& query = dataset->items[5];  // "find histograms like this one"

  // 5. Range query with the radius of the exact 10th neighbour.
  const double epsilon = oracle.KnnRadius(query, 10);
  core::RangeQueryInfo range_info;
  Result<std::vector<core::ItemId>> range =
      net.RangeQuery(query, epsilon, /*querying_peer=*/0,
                     /*max_peers_contacted=*/-1, &range_info);
  if (!range.ok()) {
    std::fprintf(stderr, "range query failed: %s\n", range.status().ToString().c_str());
    return 1;
  }
  const core::PrecisionRecall range_pr =
      core::Evaluate(*range, oracle.RangeSearch(query, epsilon));
  std::printf("\nrange query (eps=%.4f):\n", epsilon);
  std::printf("  retrieved=%zu precision=%.2f recall=%.2f candidates=%d contacted=%d\n",
              range->size(), range_pr.precision, range_pr.recall,
              range_info.candidate_peers, range_info.peers_contacted);

  // 6. k-NN query via the Fig. 5 heuristic.
  core::KnnOptions knn_options;
  knn_options.c = 1.5;
  core::KnnQueryInfo knn_info;
  Result<std::vector<core::ItemId>> knn =
      net.KnnQuery(query, /*k=*/10, knn_options, /*querying_peer=*/0, &knn_info);
  if (!knn.ok()) {
    std::fprintf(stderr, "knn query failed: %s\n", knn.status().ToString().c_str());
    return 1;
  }
  const core::PrecisionRecall knn_pr = core::Evaluate(*knn, oracle.Knn(query, 10));
  std::printf("\nk-NN query (k=10, C=%.1f):\n", knn_options.c);
  std::printf("  fetched=%zu precision=%.2f recall=%.2f peers=%d items_requested=%d\n",
              knn->size(), knn_pr.precision, knn_pr.recall,
              knn_info.range.peers_contacted, knn_info.items_requested);
  std::printf("  nearest ids:");
  for (size_t i = 0; i < knn->size() && i < 10; ++i) std::printf(" %d", (*knn)[i]);
  std::printf("\n\ntotal traffic after queries: %s\n", net.stats().Summary().c_str());
  return 0;
}
