// Public-transport scenario (the paper's Section 1 motivation, Section 5
// configuration scaled to run in seconds).
//
// Commuters on a long-distance train form an ad-hoc network for the length
// of the ride. Each device holds hundreds of media files described by
// 512-dimensional feature traces; publishing every item into a CAN would
// outlast the ride, so Hyper-M publishes wavelet-space cluster summaries
// instead. This example contrasts the two deployments head-to-head and uses
// the discrete-event simulator to estimate the wall-clock dissemination
// makespan under a per-hop radio latency, with peers publishing in parallel.
//
//   ./build/examples/transit_share

#include <cstdio>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/baseline.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "sim/dissemination.h"

using namespace hyperm;

namespace {

constexpr int kPeers = 40;
constexpr int kItemsPerPeer = 250;

}  // namespace

int main() {
  Rng rng(99);

  data::MarkovOptions data_options;
  data_options.count = kPeers * kItemsPerPeer;
  data_options.dim = 512;
  data_options.num_families = 25;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("transit: %zu traces of dim %zu over %d devices\n", dataset->size(),
              dataset->dim(), kPeers);

  data::AssignmentOptions assign_options;
  assign_options.num_peers = kPeers;
  assign_options.num_interest_classes = 25;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  // --- Hyper-M deployment ---------------------------------------------------
  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }
  core::HyperMNetwork& net = **network;
  std::vector<uint64_t> hyperm_per_peer;
  for (int p = 0; p < kPeers; ++p) hyperm_per_peer.push_back(net.publication_hops(p));
  const uint64_t hyperm_hops = net.stats().hops(sim::TrafficClass::kInsert) +
                               net.stats().hops(sim::TrafficClass::kReplicate);
  const double hyperm_energy = net.stats().total_energy_millijoules();
  const double hyperm_makespan =
      sim::ParallelMakespanMs(hyperm_per_peer,
                              sim::AverageInsertBytesPerHop(net.stats()));

  // --- Conventional CAN: every item published individually ------------------
  Rng baseline_rng(99);
  Result<std::unique_ptr<core::CanItemBaseline>> baseline =
      core::CanItemBaseline::Build(*dataset, *assignment, {}, baseline_rng);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  const uint64_t baseline_hops =
      (*baseline)->stats().hops(sim::TrafficClass::kInsert);
  const double baseline_energy = (*baseline)->stats().total_energy_millijoules();
  // Per-peer baseline cost ~ items * avg hops (uniform enough to average).
  // Baseline insert messages carry the full 512-dim vector: inserting an
  // item IS shipping it.
  std::vector<uint64_t> baseline_per_peer(
      static_cast<size_t>(kPeers), baseline_hops / static_cast<uint64_t>(kPeers));
  const double baseline_makespan =
      sim::ParallelMakespanMs(
          baseline_per_peer, sim::AverageInsertBytesPerHop((*baseline)->stats()));

  std::printf("\n%-28s %14s %14s\n", "dissemination", "Hyper-M", "per-item CAN");
  std::printf("%-28s %14llu %14llu\n", "insert+replicate hops",
              static_cast<unsigned long long>(hyperm_hops),
              static_cast<unsigned long long>(baseline_hops));
  std::printf("%-28s %14.3f %14.3f\n", "hops per item",
              static_cast<double>(hyperm_hops) / net.total_items(),
              static_cast<double>(baseline_hops) / net.total_items());
  std::printf("%-28s %14.1f %14.1f\n", "radio energy (mJ)", hyperm_energy,
              baseline_energy);
  std::printf("%-28s %14.1f %14.1f\n", "parallel makespan (s)",
              hyperm_makespan / 1000.0, baseline_makespan / 1000.0);
  std::printf("%-28s %14.1fx\n", "speed-up",
              baseline_makespan / std::max(1.0, hyperm_makespan));

  // --- The network is still searchable --------------------------------------
  const core::FlatIndex oracle(*dataset);
  std::vector<core::PrecisionRecall> results;
  for (int q = 0; q < 20; ++q) {
    const size_t index = (static_cast<size_t>(q) * 911 + 3) % dataset->size();
    const double eps = oracle.KnnRadius(dataset->items[index], 20);
    Result<std::vector<core::ItemId>> retrieved =
        net.RangeQuery(dataset->items[index], eps, q % kPeers, /*max_peers=*/-1);
    if (!retrieved.ok()) {
      std::fprintf(stderr, "%s\n", retrieved.status().ToString().c_str());
      return 1;
    }
    results.push_back(
        core::Evaluate(*retrieved, oracle.RangeSearch(dataset->items[index], eps)));
  }
  const core::EffectivenessSummary s = core::Summarize(results);
  std::printf("\nrange queries after setup: precision %.2f recall %.2f (min %.2f)\n",
              s.mean_precision, s.mean_recall, s.min_recall);
  return 0;
}
