// Conference scenario (the paper's Section 6 configuration).
//
// Fifty attendees meet for a session and share ~10,000 image histograms
// (an ALOI-like collection: object prototypes observed under different
// viewing conditions). The network must be searchable within the session,
// so items are never published individually — only wavelet-space cluster
// summaries are. This example measures what an attendee experiences:
//
//   * how much traffic/energy overlay construction costs,
//   * recall of similarity (k-NN) search for "slides/photos like mine",
//   * how the C knob trades completeness against bandwidth.
//
//   ./build/examples/conference_share

#include <cstdio>

#include "data/histogram_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

using namespace hyperm;

namespace {

constexpr int kPeers = 50;
constexpr int kQueries = 30;
constexpr int kK = 10;

}  // namespace

int main() {
  Rng rng(7);

  // ~200 histograms per attendee, as in the paper's effectiveness setup.
  data::HistogramOptions data_options;
  data_options.num_objects = 840;
  data_options.views_per_object = 12;
  data_options.dim = 64;
  Result<data::Dataset> dataset = data::GenerateHistograms(data_options, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("conference: %zu histograms across %d attendees\n", dataset->size(),
              kPeers);

  data::AssignmentOptions assign_options;
  assign_options.num_peers = kPeers;
  assign_options.num_interest_classes = 25;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(*dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }

  core::HyperMOptions options;
  options.num_layers = 4;
  options.clusters_per_peer = 10;
  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(*dataset, *assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }
  core::HyperMNetwork& net = **network;

  // Publication cost: peers publish concurrently, so the session-start
  // latency is governed by the slowest peer, not the sum.
  uint64_t max_peer_hops = 0;
  uint64_t sum_peer_hops = 0;
  for (int p = 0; p < net.num_peers(); ++p) {
    max_peer_hops = std::max(max_peer_hops, net.publication_hops(p));
    sum_peer_hops += net.publication_hops(p);
  }
  std::printf("publication: %llu total hops, slowest attendee %llu hops, "
              "%.3f hops per shared item, %.1f mJ radio energy\n",
              static_cast<unsigned long long>(sum_peer_hops),
              static_cast<unsigned long long>(max_peer_hops),
              static_cast<double>(sum_peer_hops) / net.total_items(),
              net.stats().total_energy_millijoules());

  const core::FlatIndex oracle(*dataset);

  // Similarity search sweep over the C bandwidth/completeness knob.
  for (double c : {1.0, 1.5, 2.0}) {
    core::KnnOptions knn_options;
    knn_options.c = c;
    std::vector<core::PrecisionRecall> results;
    int items_requested = 0;
    for (int q = 0; q < kQueries; ++q) {
      const size_t index = (static_cast<size_t>(q) * 337 + 11) % dataset->size();
      core::KnnQueryInfo info;
      Result<std::vector<core::ItemId>> fetched = net.KnnQuery(
          dataset->items[index], kK, knn_options, /*querying_peer=*/q % kPeers, &info);
      if (!fetched.ok()) {
        std::fprintf(stderr, "%s\n", fetched.status().ToString().c_str());
        return 1;
      }
      results.push_back(core::Evaluate(*fetched, oracle.Knn(dataset->items[index], kK)));
      items_requested += info.items_requested;
    }
    const core::EffectivenessSummary s = core::Summarize(results);
    std::printf("k-NN (k=%d, C=%.1f): precision %.2f [%.2f..%.2f]  "
                "recall %.2f [%.2f..%.2f]  avg items fetched %.1f\n",
                kK, c, s.mean_precision, s.min_precision, s.max_precision,
                s.mean_recall, s.min_recall, s.max_recall,
                static_cast<double>(items_requested) / kQueries);
  }

  std::printf("session traffic: %s\n", net.stats().Summary().c_str());
  return 0;
}
