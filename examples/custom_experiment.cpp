// Configurable experiment runner: every knob of the framework on one
// command line. Useful both as an exploration tool and as a worked example
// of the full public API (generators, persistence, deployment, queries,
// evaluation, traffic accounting).
//
// Usage (all flags optional):
//   ./build/examples/custom_experiment ...flags...
//   --dataset=histogram --nodes=50 --items=4200 --dim=64
//   --layers=4 --clusters=10 --queries=25 --k=10 --c=1.5
//   --policy=min --overlay=can --wavelet=haar-avg --seed=606
//   --save-data=/tmp/corpus.hmd
//
//   --dataset=markov|histogram    synthetic corpus family
//   --load-data=PATH              read a saved corpus instead of generating
//   --save-data=PATH              persist the corpus (binary HMD format)
//   --policy=min|sum|product      score aggregation
//   --overlay=can|ring|tree       substrate selection
//   --wavelet=haar-avg|haar-ortho|d4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/dataset_io.h"
#include "data/histogram_generator.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

using namespace hyperm;

namespace {

struct Flags {
  std::string dataset = "histogram";
  std::string load_data;
  std::string save_data;
  int nodes = 50;
  int items = 4200;
  int dim = 64;
  int layers = 4;
  int clusters = 10;
  int queries = 25;
  int k = 10;
  double c = 1.5;
  std::string policy = "min";
  std::string overlay = "can";
  std::string wavelet = "haar-avg";
  uint64_t seed = 606;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "dataset", &flags->dataset) ||
        ParseFlag(argv[i], "load-data", &flags->load_data) ||
        ParseFlag(argv[i], "save-data", &flags->save_data) ||
        ParseFlag(argv[i], "policy", &flags->policy) ||
        ParseFlag(argv[i], "overlay", &flags->overlay) ||
        ParseFlag(argv[i], "wavelet", &flags->wavelet)) {
      continue;
    }
    if (ParseFlag(argv[i], "nodes", &value)) {
      flags->nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "items", &value)) {
      flags->items = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "dim", &value)) {
      flags->dim = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "layers", &value)) {
      flags->layers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "clusters", &value)) {
      flags->clusters = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "queries", &value)) {
      flags->queries = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      flags->k = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "c", &value)) {
      flags->c = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;
  Rng rng(flags.seed);

  // --- Corpus ----------------------------------------------------------------
  data::Dataset dataset;
  if (!flags.load_data.empty()) {
    Result<data::Dataset> loaded = data::ReadBinary(flags.load_data);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else if (flags.dataset == "markov") {
    data::MarkovOptions options;
    options.count = flags.items;
    options.dim = flags.dim;
    Result<data::Dataset> generated = data::GenerateMarkov(options, rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n", generated.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(generated).value();
  } else if (flags.dataset == "histogram") {
    data::HistogramOptions options;
    options.dim = flags.dim;
    options.views_per_object = 12;
    options.num_objects = std::max(1, flags.items / 12);
    Result<data::Dataset> generated = data::GenerateHistograms(options, rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n", generated.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(generated).value();
  } else {
    std::fprintf(stderr, "unknown --dataset=%s\n", flags.dataset.c_str());
    return 2;
  }
  if (!flags.save_data.empty()) {
    const Status saved = data::WriteBinary(dataset, flags.save_data);
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("corpus saved to %s\n", flags.save_data.c_str());
  }

  // --- Deployment --------------------------------------------------------------
  data::AssignmentOptions assign_options;
  assign_options.num_peers = flags.nodes;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(dataset, assign_options, rng);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n", assignment.status().ToString().c_str());
    return 1;
  }

  core::HyperMOptions options;
  options.num_layers = flags.layers;
  options.clusters_per_peer = flags.clusters;
  if (flags.policy == "min") {
    options.score_policy = core::ScorePolicy::kMin;
  } else if (flags.policy == "sum") {
    options.score_policy = core::ScorePolicy::kSum;
  } else if (flags.policy == "product") {
    options.score_policy = core::ScorePolicy::kProduct;
  } else {
    std::fprintf(stderr, "unknown --policy=%s\n", flags.policy.c_str());
    return 2;
  }
  if (flags.overlay == "can") {
    options.overlay_kind = core::OverlayKind::kCan;
  } else if (flags.overlay == "ring") {
    options.overlay_kind = core::OverlayKind::kRingAndCan;
  } else if (flags.overlay == "tree") {
    options.overlay_kind = core::OverlayKind::kTree;
  } else {
    std::fprintf(stderr, "unknown --overlay=%s\n", flags.overlay.c_str());
    return 2;
  }
  if (flags.wavelet == "haar-avg") {
    options.wavelet_kind = wavelet::WaveletKind::kHaarAveraging;
  } else if (flags.wavelet == "haar-ortho") {
    options.wavelet_kind = wavelet::WaveletKind::kHaarOrthonormal;
  } else if (flags.wavelet == "d4") {
    options.wavelet_kind = wavelet::WaveletKind::kDaubechies4;
  } else {
    std::fprintf(stderr, "unknown --wavelet=%s\n", flags.wavelet.c_str());
    return 2;
  }

  Result<std::unique_ptr<core::HyperMNetwork>> network =
      core::HyperMNetwork::Build(dataset, *assignment, options, rng);
  if (!network.ok()) {
    std::fprintf(stderr, "build: %s\n", network.status().ToString().c_str());
    return 1;
  }
  core::HyperMNetwork& net = **network;
  std::printf("deployment: %d peers, %d layers, %d clusters/peer, %s overlay, %s\n",
              net.num_peers(), net.num_layers(), flags.clusters,
              flags.overlay.c_str(), flags.wavelet.c_str());
  std::printf("items: %zu x %zu-d (%s)\n", dataset.size(), dataset.dim(),
              flags.dataset.c_str());
  std::printf("setup traffic: %s\n", net.stats().Summary().c_str());

  // --- Workload ---------------------------------------------------------------
  const core::FlatIndex oracle(dataset);
  std::vector<core::PrecisionRecall> range_results, knn_results;
  for (int q = 0; q < flags.queries; ++q) {
    const size_t index = (static_cast<size_t>(q) * 7919 + 13) % dataset.size();
    const Vector& query = dataset.items[index];
    const double eps = oracle.KnnRadius(query, flags.k);

    Result<std::vector<core::ItemId>> range =
        net.RangeQuery(query, eps, q % flags.nodes, /*max_peers=*/-1);
    if (!range.ok()) {
      std::fprintf(stderr, "range: %s\n", range.status().ToString().c_str());
      return 1;
    }
    range_results.push_back(core::Evaluate(*range, oracle.RangeSearch(query, eps)));

    core::KnnOptions knn_options;
    knn_options.c = flags.c;
    Result<std::vector<core::ItemId>> knn =
        net.KnnQuery(query, flags.k, knn_options, q % flags.nodes);
    if (!knn.ok()) {
      std::fprintf(stderr, "knn: %s\n", knn.status().ToString().c_str());
      return 1;
    }
    knn_results.push_back(core::Evaluate(*knn, oracle.Knn(query, flags.k)));
  }

  const core::EffectivenessSummary range_summary = core::Summarize(range_results);
  const core::EffectivenessSummary knn_summary = core::Summarize(knn_results);
  std::printf("\nrange queries: precision %.3f recall %.3f [%.2f..%.2f]\n",
              range_summary.mean_precision, range_summary.mean_recall,
              range_summary.min_recall, range_summary.max_recall);
  std::printf("k-NN queries:  precision %.3f recall %.3f [%.2f..%.2f]\n",
              knn_summary.mean_precision, knn_summary.mean_recall,
              knn_summary.min_recall, knn_summary.max_recall);
  std::printf("total traffic: %s\n", net.stats().Summary().c_str());
  return 0;
}
